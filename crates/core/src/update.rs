//! Sub-document update (§3.1, §5.1–5.2).
//!
//! LOB storage "imposes significant restrictions on XML subdocument update"
//! — the native format removes them: a single node is updated by rewriting
//! only the packed record that holds it (touching ≈ p·n bytes instead of the
//! whole document), and sibling insertion never renumbers anything because
//! Dewey relative IDs always have room in the middle ([`RelId::between`]).
//!
//! Operations: replace a text/attribute value, delete a subtree, insert a
//! parsed fragment (first/last/before/after a position). Records that
//! overflow after growth spill children into fresh records exactly like the
//! packer; records orphaned by subtree deletion are reclaimed through the
//! NodeID index.

use crate::error::{EngineError, Result};
use crate::pack::{kind, read_header, read_nodes, NodeView, PackedRecord};
use crate::xmltable::{nodeid_key, subtree_successor, DocId, XmlTable};
use rx_storage::codec::Enc;
use rx_storage::wal::LogRecord;
use rx_storage::{Rid, Txn};
use rx_xml::event::{Event, EventSink};
use rx_xml::name::{NameDict, QNameId, StrId};
use rx_xml::nodeid::{NodeId, RelId};
use rx_xml::value::TypeAnn;
use std::sync::Arc;

/// Where to insert a new child fragment.
#[derive(Debug, Clone, PartialEq)]
pub enum InsertPos {
    /// As the first child of the target element.
    First,
    /// As the last child of the target element.
    Last,
    /// Immediately before the sibling with this node ID.
    Before(NodeId),
    /// Immediately after the sibling with this node ID.
    After(NodeId),
}

/// An editable in-memory node (decoded from one packed record).
#[derive(Debug, Clone, PartialEq)]
pub enum ENode {
    /// Element.
    Elem {
        /// Relative ID.
        rel: RelId,
        /// Name.
        name: QNameId,
        /// Namespace declarations.
        ns: Vec<(StrId, StrId)>,
        /// Children (attributes first, then content).
        children: Vec<ENode>,
    },
    /// Attribute.
    Attr {
        /// Relative ID.
        rel: RelId,
        /// Name.
        name: QNameId,
        /// Annotation.
        ann: TypeAnn,
        /// Value.
        value: String,
    },
    /// Text.
    Text {
        /// Relative ID.
        rel: RelId,
        /// Annotation.
        ann: TypeAnn,
        /// Value.
        value: String,
    },
    /// Comment.
    Comment {
        /// Relative ID.
        rel: RelId,
        /// Value.
        value: String,
    },
    /// Processing instruction.
    Pi {
        /// Relative ID.
        rel: RelId,
        /// Target.
        target: QNameId,
        /// Data.
        value: String,
    },
    /// Range proxy (subtrees in other records).
    Proxy {
        /// First covered sibling.
        first: RelId,
        /// Last covered sibling.
        last: RelId,
        /// Covered subtree count.
        count: u64,
    },
}

impl ENode {
    /// The node's relative ID (proxies: the first covered sibling's).
    pub fn rel(&self) -> &RelId {
        match self {
            ENode::Elem { rel, .. }
            | ENode::Attr { rel, .. }
            | ENode::Text { rel, .. }
            | ENode::Comment { rel, .. }
            | ENode::Pi { rel, .. } => rel,
            ENode::Proxy { first, .. } => first,
        }
    }

    /// The last relative ID covered (proxies span a range).
    pub fn last_rel(&self) -> &RelId {
        match self {
            ENode::Proxy { last, .. } => last,
            other => other.rel(),
        }
    }
}

/// Decode a record body region into editable nodes.
pub fn decode_region(region: &[u8]) -> Result<Vec<ENode>> {
    let mut out = Vec::new();
    for view in read_nodes(region) {
        out.push(decode_entry(&view?)?);
    }
    Ok(out)
}

fn decode_entry(view: &NodeView<'_>) -> Result<ENode> {
    Ok(match view {
        NodeView::Element {
            rel,
            name,
            nsdecls,
            content,
            ..
        } => ENode::Elem {
            rel: rel.clone(),
            name: *name,
            ns: nsdecls.clone(),
            children: decode_region(content)?,
        },
        NodeView::Attribute {
            rel,
            name,
            ann,
            value,
        } => ENode::Attr {
            rel: rel.clone(),
            name: *name,
            ann: *ann,
            value: (*value).to_string(),
        },
        NodeView::Text { rel, ann, value } => ENode::Text {
            rel: rel.clone(),
            ann: *ann,
            value: (*value).to_string(),
        },
        NodeView::Comment { rel, value } => ENode::Comment {
            rel: rel.clone(),
            value: (*value).to_string(),
        },
        NodeView::Pi { rel, target, value } => ENode::Pi {
            rel: rel.clone(),
            target: *target,
            value: (*value).to_string(),
        },
        NodeView::Proxy { first, last, count } => ENode::Proxy {
            first: first.clone(),
            last: last.clone(),
            count: *count,
        },
    })
}

/// Encode one node (matching the packer's format byte-for-byte).
pub fn encode_entry(node: &ENode, out: &mut Enc) {
    match node {
        ENode::Elem {
            rel,
            name,
            ns,
            children,
        } => {
            out.u8(kind::ELEMENT);
            out.bytes(rel.as_bytes());
            out.varint(u64::from(*name));
            out.varint(ns.len() as u64);
            for (p, u) in ns {
                out.varint(u64::from(*p));
                out.varint(u64::from(*u));
            }
            out.varint(children.len() as u64);
            let mut inner = Enc::new();
            for c in children {
                encode_entry(c, &mut inner);
            }
            let body = inner.into_bytes();
            out.varint(body.len() as u64);
            out.raw(&body);
        }
        ENode::Attr {
            rel,
            name,
            ann,
            value,
        } => {
            out.u8(kind::ATTRIBUTE);
            out.bytes(rel.as_bytes());
            out.varint(u64::from(*name));
            out.u8(*ann as u8);
            out.bytes(value.as_bytes());
        }
        ENode::Text { rel, ann, value } => {
            out.u8(kind::TEXT);
            out.bytes(rel.as_bytes());
            out.u8(*ann as u8);
            out.bytes(value.as_bytes());
        }
        ENode::Comment { rel, value } => {
            out.u8(kind::COMMENT);
            out.bytes(rel.as_bytes());
            out.bytes(value.as_bytes());
        }
        ENode::Pi { rel, target, value } => {
            out.u8(kind::PI);
            out.bytes(rel.as_bytes());
            out.varint(u64::from(*target));
            out.bytes(value.as_bytes());
        }
        ENode::Proxy { first, last, count } => {
            out.u8(kind::PROXY);
            out.bytes(first.as_bytes());
            out.bytes(last.as_bytes());
            out.varint(*count);
        }
    }
}

/// Compute the interval upper endpoints and minimum ID of a node sequence
/// under context `ctx` (mirrors the packer's run tracking).
fn compute_runs(entries: &[ENode], ctx: &NodeId) -> (Option<NodeId>, Vec<NodeId>) {
    fn walk(
        entries: &[ENode],
        ctx: &NodeId,
        min: &mut Option<NodeId>,
        runs: &mut Vec<(NodeId, NodeId)>,
        open: &mut bool,
    ) {
        for e in entries {
            match e {
                ENode::Proxy { .. } => {
                    *open = false;
                }
                ENode::Elem { rel, children, .. } => {
                    let abs = ctx.child(rel);
                    note(&abs, min, runs, open);
                    walk(children, &abs, min, runs, open);
                }
                other => {
                    let abs = ctx.child(other.rel());
                    note(&abs, min, runs, open);
                }
            }
        }
    }
    fn note(
        abs: &NodeId,
        min: &mut Option<NodeId>,
        runs: &mut Vec<(NodeId, NodeId)>,
        open: &mut bool,
    ) {
        if min.is_none() {
            *min = Some(abs.clone());
        }
        if *open {
            runs.last_mut().expect("open run exists").1 = abs.clone();
        } else {
            runs.push((abs.clone(), abs.clone()));
            *open = true;
        }
    }
    let mut min = None;
    let mut runs = Vec::new();
    let mut open = false;
    walk(entries, ctx, &mut min, &mut runs, &mut open);
    (min, runs.into_iter().map(|(_, last)| last).collect())
}

/// Re-encode a record (header preserved) from edited entries.
fn encode_record(header: &[u8], entries: &[ENode], ctx: &NodeId) -> Result<PackedRecord> {
    let mut e = Enc::with_capacity(header.len() + 256);
    e.raw(header);
    e.varint(entries.len() as u64);
    for n in entries {
        encode_entry(n, &mut e);
    }
    let (min, uppers) = compute_runs(entries, ctx);
    Ok(PackedRecord {
        bytes: e.into_bytes(),
        min_id: min.ok_or_else(|| EngineError::Record("record would become empty".into()))?,
        interval_uppers: uppers,
    })
}

/// The record-local edit context: decoded entries + original header bytes.
struct EditCtx {
    rid: Rid,
    header_bytes: Vec<u8>,
    ctx: NodeId,
    entries: Vec<ENode>,
    old_uppers: Vec<NodeId>,
}

fn load_edit(xml: &XmlTable, doc: DocId, target: &NodeId) -> Result<EditCtx> {
    let rid = xml
        .locate(doc, target)?
        .ok_or_else(|| EngineError::NotFound {
            kind: "node",
            name: format!("docid {doc} node {target}"),
        })?;
    let row = xml.fetch(rid)?;
    let hdr = read_header(&row.data)?;
    let entries = decode_region(&row.data[hdr.body_offset..])?;
    // Header bytes = everything before the subtree count varint. Re-encode
    // them verbatim (context/path/ns unchanged by node edits).
    let header_bytes = {
        // The header is everything up to body_offset minus the trailing
        // subtree-count varint, so rebuild it from the decoded header.
        let mut e = Enc::new();
        e.bytes(hdr.context.as_bytes());
        e.varint(hdr.path.len() as u64);
        for q in &hdr.path {
            e.varint(u64::from(*q));
        }
        e.varint(hdr.namespaces.len() as u64);
        for (p, u) in &hdr.namespaces {
            e.varint(u64::from(*p));
            e.varint(u64::from(*u));
        }
        e.into_bytes()
    };
    let (_, old_uppers) = compute_runs(&entries, &hdr.context);
    Ok(EditCtx {
        rid,
        header_bytes,
        ctx: hdr.context,
        entries,
        old_uppers,
    })
}

/// Walk to the entry holding `target`, applying `f` to (parent children vec,
/// index of the entry, absolute id of the entry). Returns `f`'s output.
fn with_target<T>(
    entries: &mut Vec<ENode>,
    ctx: &NodeId,
    target: &NodeId,
    f: &mut impl FnMut(&mut Vec<ENode>, usize, &NodeId) -> Result<T>,
) -> Result<Option<T>> {
    for i in 0..entries.len() {
        let abs = ctx.child(entries[i].rel());
        if matches!(entries[i], ENode::Proxy { .. }) {
            continue;
        }
        if &abs == target {
            return f(entries, i, &abs).map(Some);
        }
        if abs.is_ancestor(target) {
            if let ENode::Elem { children, .. } = &mut entries[i] {
                return with_target(children, &abs, target, f);
            }
            return Ok(None);
        }
    }
    Ok(None)
}

/// Counters for the E3 update experiment.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct UpdateStats {
    /// Bytes of record images written (the paper's "touching storage of pn").
    pub bytes_written: u64,
    /// Records rewritten or created.
    pub records_touched: u64,
}

/// Replace the value of a text or attribute node.
pub fn replace_value(
    txn: &Txn,
    xml: &XmlTable,
    doc: DocId,
    target: &NodeId,
    new_value: &str,
) -> Result<UpdateStats> {
    let _latch = xml.edit_guard();
    let mut edit = load_edit(xml, doc, target)?;
    let found = with_target(
        &mut edit.entries,
        &edit.ctx,
        target,
        &mut |list, i, _| match &mut list[i] {
            ENode::Text { value, .. } | ENode::Attr { value, .. } => {
                *value = new_value.to_string();
                Ok(())
            }
            other => Err(EngineError::Invalid(format!(
                "replace_value target must be a text or attribute node, found {other:?}"
            ))),
        },
    )?;
    if found.is_none() {
        return Err(EngineError::NotFound {
            kind: "node",
            name: format!("docid {doc} node {target}"),
        });
    }
    commit_edit(txn, xml, doc, edit)
}

/// Delete the subtree rooted at `target` (records fully inside the subtree
/// are reclaimed through the NodeID index).
pub fn delete_node(txn: &Txn, xml: &XmlTable, doc: DocId, target: &NodeId) -> Result<UpdateStats> {
    let _latch = xml.edit_guard();
    let mut edit = load_edit(xml, doc, target)?;
    let found = with_target(&mut edit.entries, &edit.ctx, target, &mut |list, i, _| {
        list.remove(i);
        Ok(())
    })?;
    if found.is_none() {
        return Err(EngineError::NotFound {
            kind: "node",
            name: format!("docid {doc} node {target}"),
        });
    }
    if edit.entries.is_empty() {
        return Err(EngineError::Invalid(
            "deleting the document root is not supported; delete the row instead".into(),
        ));
    }
    let mut stats = commit_edit(txn, xml, doc, edit)?;
    // Reclaim records that lived entirely inside the deleted subtree.
    let succ = subtree_successor(target);
    let lo = nodeid_key(doc, target);
    let mut hi = Vec::with_capacity(8 + succ.len());
    hi.extend_from_slice(&doc.to_be_bytes());
    hi.extend_from_slice(&succ);
    let mut doomed: Vec<(Vec<u8>, Rid)> = Vec::new();
    xml.nodeid_index().scan_from(&lo, |k, v| {
        if k >= hi.as_slice() {
            return false;
        }
        doomed.push((k.to_vec(), Rid::from_u64(v)));
        true
    })?;
    let mut deleted_rids: Vec<Rid> = Vec::new();
    for (key, rid) in doomed {
        if xml.nodeid_index().delete(&key)?.is_some() {
            txn.log(&LogRecord::IndexDelete {
                txn: txn.id(),
                space: xml.space_id(),
                anchor: crate::xmltable::NODEID_INDEX_ANCHOR as u32,
                key: key.clone(),
                value: rid.to_u64(),
            })?;
            let index = Arc::clone(xml.nodeid_index());
            let space = xml.space_id();
            txn.push_undo(Box::new(move |ctx| {
                ctx.log(&LogRecord::IndexInsert {
                    txn: ctx.txn(),
                    space,
                    anchor: crate::xmltable::NODEID_INDEX_ANCHOR as u32,
                    key: key.clone(),
                    value: rid.to_u64(),
                    prev: None,
                })?;
                index.insert(&key, rid.to_u64())?;
                Ok(())
            }));
        }
        if !deleted_rids.contains(&rid) {
            let before = xml.heap().fetch(rid)?;
            xml.heap().delete(rid)?;
            txn.log(&LogRecord::HeapDelete {
                txn: txn.id(),
                space: xml.space_id(),
                rid,
                before: before.clone(),
            })?;
            let heap = Arc::clone(xml.heap());
            let space = xml.space_id();
            txn.push_undo(Box::new(move |ctx| {
                ctx.log(&LogRecord::HeapInsert {
                    txn: ctx.txn(),
                    space,
                    rid,
                    data: before.clone(),
                })?;
                heap.insert_at(rid, &before)?;
                Ok(())
            }));
            deleted_rids.push(rid);
            stats.records_touched += 1;
        }
    }
    Ok(stats)
}

/// Insert a parsed XML fragment relative to `target`. For `First`/`Last` the
/// target is the parent element; for `Before`/`After` the position carries
/// the sibling and `target` is the parent element.
pub fn insert_fragment(
    txn: &Txn,
    xml: &XmlTable,
    doc: DocId,
    dict: &NameDict,
    parent: &NodeId,
    pos: InsertPos,
    fragment_xml: &str,
) -> Result<UpdateStats> {
    let _latch = xml.edit_guard();
    let mut edit = load_edit(xml, doc, parent)?;
    let dict = dict.clone_ref();
    let frag_events = FragmentBuilder::parse(fragment_xml, dict)?;
    let mut result: Result<()> = Ok(());
    let found = with_target(&mut edit.entries, &edit.ctx, parent, &mut |list, i, abs| {
        let ENode::Elem { children, .. } = &mut list[i] else {
            result = Err(EngineError::Invalid(
                "insertion parent must be an element".into(),
            ));
            return Ok(());
        };
        // Choose the new child's relative ID using the §3.1 midpoint rules.
        let idx_and_rel: Result<(usize, RelId)> = (|| {
            // Content children (skip attributes: fragments insert after them).
            let first_content = children
                .iter()
                .position(|c| !matches!(c, ENode::Attr { .. }))
                .unwrap_or(children.len());
            Ok(match &pos {
                InsertPos::First => {
                    let rel = match children.get(first_content) {
                        Some(c) => c.rel().before(),
                        None => match children.last() {
                            Some(last_attr) => last_attr.rel().next_sibling(),
                            None => RelId::first(),
                        },
                    };
                    (first_content, rel)
                }
                InsertPos::Last => {
                    let rel = match children.last() {
                        Some(c) => c.last_rel().next_sibling(),
                        None => RelId::first(),
                    };
                    (children.len(), rel)
                }
                InsertPos::Before(sib) => {
                    let sib_rel = sibling_rel(abs, sib)?;
                    let idx = children
                        .iter()
                        .position(|c| c.rel() >= &sib_rel)
                        .unwrap_or(children.len());
                    let rel = if idx == 0 || idx == first_content {
                        sib_rel.before()
                    } else {
                        RelId::between(children[idx - 1].last_rel(), &sib_rel)
                            .map_err(EngineError::from)?
                    };
                    (idx, rel)
                }
                InsertPos::After(sib) => {
                    let sib_rel = sibling_rel(abs, sib)?;
                    let idx = children
                        .iter()
                        .position(|c| c.rel() > &sib_rel)
                        .unwrap_or(children.len());
                    let rel = match children.get(idx) {
                        Some(next) => {
                            RelId::between(&sib_rel, next.rel()).map_err(EngineError::from)?
                        }
                        None => sib_rel.next_sibling(),
                    };
                    (idx, rel)
                }
            })
        })();
        match idx_and_rel {
            Ok((idx, rel)) => {
                let node = frag_events.instantiate(rel);
                children.insert(idx, node);
            }
            Err(e) => result = Err(e),
        }
        Ok(())
    })?;
    result?;
    if found.is_none() {
        return Err(EngineError::NotFound {
            kind: "node",
            name: format!("docid {doc} node {parent}"),
        });
    }
    commit_edit(txn, xml, doc, edit)
}

fn sibling_rel(parent_abs: &NodeId, sib: &NodeId) -> Result<RelId> {
    if !parent_abs.is_ancestor(sib) {
        return Err(EngineError::Invalid(format!(
            "{sib} is not a child of {parent_abs}"
        )));
    }
    let tail = &sib.as_bytes()[parent_abs.as_bytes().len()..];
    RelId::from_bytes(tail).map_err(EngineError::from)
}

/// Re-encode the edited record; spill children when it no longer fits.
fn commit_edit(txn: &Txn, xml: &XmlTable, doc: DocId, edit: EditCtx) -> Result<UpdateStats> {
    let mut stats = UpdateStats::default();
    let limit = rx_storage::MAX_RECORD_SIZE - 64;
    // Remove the stale interval entries FIRST: a spilled record's new entry
    // may reuse exactly the same (doc, upper) key.
    xml.delete_uppers(txn, doc, &edit.old_uppers)?;
    let mut rec = encode_record(&edit.header_bytes, &edit.entries, &edit.ctx)?;
    let mut entries = edit.entries;
    while rec.bytes.len() > limit {
        // Spill the largest element's children block into fresh records.
        spill_largest(txn, xml, doc, &mut entries, &edit.ctx, limit, &mut stats)?;
        rec = encode_record(&edit.header_bytes, &entries, &edit.ctx)?;
    }
    stats.bytes_written += rec.bytes.len() as u64;
    stats.records_touched += 1;
    xml.update_record(txn, doc, edit.rid, &rec, &[])?;
    Ok(stats)
}

/// Find the element with the largest encoded children and move those
/// children into fresh records (context = that element), replacing them with
/// a range proxy. Children are grouped into records of at most `limit` bytes;
/// an oversized element child is spilled recursively first.
fn spill_largest(
    txn: &Txn,
    xml: &XmlTable,
    doc: DocId,
    entries: &mut [ENode],
    ctx: &NodeId,
    limit: usize,
    stats: &mut UpdateStats,
) -> Result<()> {
    // Locate the largest element by encoded size (top level only; recursion
    // happens across loop iterations in commit_edit and within
    // spill_children_of for oversized children).
    let mut best: Option<(usize, usize)> = None; // (index, size)
    for (i, e) in entries.iter().enumerate() {
        if let ENode::Elem { .. } = e {
            let mut enc = Enc::new();
            encode_entry(e, &mut enc);
            let size = enc.len();
            if best.is_none_or(|(_, s)| size > s) {
                best = Some((i, size));
            }
        }
    }
    let Some((i, _)) = best else {
        return Err(EngineError::Record(
            "record overflows but holds no spillable element".into(),
        ));
    };
    let abs = ctx.child(entries[i].rel());
    let ENode::Elem { children, .. } = &mut entries[i] else {
        unreachable!()
    };
    spill_children_of(txn, xml, doc, &abs, children, limit, stats)
}

/// Move the non-attribute children of the element at `abs` into new records
/// (grouped to `limit` bytes each) and replace them with one range proxy.
fn spill_children_of(
    txn: &Txn,
    xml: &XmlTable,
    doc: DocId,
    abs: &NodeId,
    children: &mut Vec<ENode>,
    limit: usize,
    stats: &mut UpdateStats,
) -> Result<()> {
    let keep: Vec<ENode> = children
        .iter()
        .filter(|c| matches!(c, ENode::Attr { .. }))
        .cloned()
        .collect();
    let mut spill: Vec<ENode> = children
        .iter()
        .filter(|c| !matches!(c, ENode::Attr { .. }))
        .cloned()
        .collect();
    if spill.is_empty() {
        return Err(EngineError::Record(format!(
            "record overflows with an unsplittable node of doc {doc}"
        )));
    }
    // Shrink oversized element children recursively before grouping.
    for child in spill.iter_mut() {
        let mut enc = Enc::new();
        encode_entry(child, &mut enc);
        if enc.len() > limit {
            let child_abs = abs.child(child.rel());
            match child {
                ENode::Elem { children: gk, .. } => {
                    spill_children_of(txn, xml, doc, &child_abs, gk, limit, stats)?;
                }
                other => {
                    return Err(EngineError::Record(format!(
                        "single node of {} bytes exceeds the record limit: {other:?}",
                        enc.len()
                    )))
                }
            }
        }
    }
    let first = spill.first().unwrap().rel().clone();
    let last = spill.last().unwrap().last_rel().clone();
    let count: u64 = spill
        .iter()
        .map(|e| match e {
            ENode::Proxy { count, .. } => *count,
            _ => 1,
        })
        .sum();
    // Header for the spilled records: context = this element (path/ns lists
    // left empty; they are advisory context for index-driven evaluation).
    let spilled_header = {
        let mut e = Enc::new();
        e.bytes(abs.as_bytes());
        e.varint(0).varint(0);
        e.into_bytes()
    };
    // Group consecutive children into records of <= limit bytes.
    let mut group: Vec<ENode> = Vec::new();
    let mut group_bytes = 0usize;
    let emit = |group: &mut Vec<ENode>, stats: &mut UpdateStats| -> Result<()> {
        if group.is_empty() {
            return Ok(());
        }
        let rec = encode_record(&spilled_header, group, abs)?;
        stats.bytes_written += rec.bytes.len() as u64;
        stats.records_touched += 1;
        xml.insert_record(txn, doc, &rec)?;
        group.clear();
        Ok(())
    };
    for child in spill {
        let mut enc = Enc::new();
        encode_entry(&child, &mut enc);
        let size = enc.len();
        if group_bytes + size + spilled_header.len() + 16 > limit {
            emit(&mut group, stats)?;
            group_bytes = 0;
        }
        group_bytes += size;
        group.push(child);
    }
    emit(&mut group, stats)?;
    let mut new_children = keep;
    new_children.push(ENode::Proxy { first, last, count });
    *children = new_children;
    Ok(())
}

// ---------------------------------------------------------------------------
// Fragment parsing
// ---------------------------------------------------------------------------

/// A parsed single-root fragment, instantiable with a chosen root relative ID.
struct FragmentBuilder {
    root: ENode,
}

impl FragmentBuilder {
    fn parse(text: &str, dict: &NameDict) -> Result<FragmentBuilder> {
        struct B {
            stack: Vec<ENode>,
            root: Option<ENode>,
        }
        impl B {
            fn alloc_rel(&mut self) -> RelId {
                match self.stack.last() {
                    Some(ENode::Elem { children, .. }) => match children.last() {
                        Some(c) => c.last_rel().next_sibling(),
                        None => RelId::first(),
                    },
                    _ => RelId::first(),
                }
            }
            fn push_node(&mut self, n: ENode) {
                match self.stack.last_mut() {
                    Some(ENode::Elem { children, .. }) => children.push(n),
                    _ => self.root = Some(n),
                }
            }
        }
        impl EventSink for B {
            fn event(&mut self, ev: Event<'_>) -> rx_xml::Result<()> {
                match ev {
                    Event::StartDocument | Event::EndDocument => {}
                    Event::StartElement { name } => {
                        let rel = self.alloc_rel();
                        self.stack.push(ENode::Elem {
                            rel,
                            name,
                            ns: Vec::new(),
                            children: Vec::new(),
                        });
                    }
                    Event::NamespaceDecl { prefix, uri } => {
                        if let Some(ENode::Elem { ns, .. }) = self.stack.last_mut() {
                            ns.push((prefix, uri));
                        }
                    }
                    Event::Attribute { name, value, ann } => {
                        let rel = match self.stack.last() {
                            Some(ENode::Elem { children, .. }) => match children.last() {
                                Some(c) => c.last_rel().next_sibling(),
                                None => RelId::first(),
                            },
                            _ => RelId::first(),
                        };
                        if let Some(ENode::Elem { children, .. }) = self.stack.last_mut() {
                            children.push(ENode::Attr {
                                rel,
                                name,
                                ann,
                                value: value.to_string(),
                            });
                        }
                    }
                    Event::Text { value, ann } => {
                        let rel = self.alloc_rel();
                        self.push_node(ENode::Text {
                            rel,
                            ann,
                            value: value.to_string(),
                        });
                    }
                    Event::Comment { value } => {
                        let rel = self.alloc_rel();
                        self.push_node(ENode::Comment {
                            rel,
                            value: value.to_string(),
                        });
                    }
                    Event::Pi { target, data } => {
                        let rel = self.alloc_rel();
                        self.push_node(ENode::Pi {
                            rel,
                            target,
                            value: data.to_string(),
                        });
                    }
                    Event::EndElement => {
                        let done = self.stack.pop().expect("balanced");
                        self.push_node(done);
                    }
                }
                Ok(())
            }
        }
        let mut b = B {
            stack: Vec::new(),
            root: None,
        };
        rx_xml::Parser::new(dict).parse(text, &mut b)?;
        let root = b
            .root
            .ok_or_else(|| EngineError::Invalid("fragment must contain one root element".into()))?;
        Ok(FragmentBuilder { root })
    }

    /// Clone the fragment with its root's relative ID replaced.
    fn instantiate(&self, rel: RelId) -> ENode {
        let mut node = self.root.clone();
        match &mut node {
            ENode::Elem { rel: r, .. }
            | ENode::Attr { rel: r, .. }
            | ENode::Text { rel: r, .. }
            | ENode::Comment { rel: r, .. }
            | ENode::Pi { rel: r, .. } => *r = rel,
            ENode::Proxy { .. } => unreachable!("fragments have no proxies"),
        }
        node
    }
}

/// Internal helper so [`insert_fragment`] can hold the dict beyond the parse.
trait CloneRef {
    fn clone_ref(&self) -> &Self;
}

impl CloneRef for NameDict {
    fn clone_ref(&self) -> &Self {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pack::{NoObserver, Packer};
    use crate::traverse::{DropIds, Traverser};
    use rx_storage::wal::{MemLogStore, Wal};
    use rx_storage::{BufferPool, LockManager, MemBackend, TableSpace, TxnManager};
    use rx_xml::Serializer;

    fn store(input: &str, target: usize) -> (XmlTable, NameDict, Arc<TxnManager>) {
        let pool = BufferPool::new(1024);
        let space = TableSpace::create(pool, 10, Arc::new(MemBackend::new())).unwrap();
        let xt = XmlTable::create(space).unwrap();
        let dict = NameDict::new();
        let txns = TxnManager::new(
            Wal::new(Arc::new(MemLogStore::new())),
            LockManager::with_defaults(),
        );
        let mut records = Vec::new();
        let mut obs = NoObserver;
        let mut p = Packer::with_target(target, &mut records, &mut obs);
        rx_xml::Parser::new(&dict).parse(input, &mut p).unwrap();
        p.finish().unwrap();
        let txn = txns.begin().unwrap();
        for r in &records {
            xt.insert_record(&txn, 1, r).unwrap();
        }
        txn.commit().unwrap();
        (xt, dict, txns)
    }

    fn serialize(xt: &XmlTable, dict: &NameDict) -> String {
        let mut ser = Serializer::new(dict);
        let mut sink = DropIds(&mut ser);
        Traverser::new(xt, 1).run(&mut sink).unwrap();
        ser.finish()
    }

    fn nid(bytes: &[u8]) -> NodeId {
        NodeId::from_bytes(bytes).unwrap()
    }

    #[test]
    fn roundtrip_decode_encode_identical() {
        let (xt, _, _) = store("<a x=\"1\"><b>hi</b><c/><!--n--></a>", 3500);
        let rid = xt.locate(1, &nid(&[0x02])).unwrap().unwrap();
        let row = xt.fetch(rid).unwrap();
        let hdr = read_header(&row.data).unwrap();
        let entries = decode_region(&row.data[hdr.body_offset..]).unwrap();
        let mut e = Enc::new();
        for n in &entries {
            encode_entry(n, &mut e);
        }
        assert_eq!(e.into_bytes(), row.data[hdr.body_offset..].to_vec());
    }

    #[test]
    fn replace_text_value() {
        let (xt, dict, txns) = store("<a><b>old</b></a>", 3500);
        let txn = txns.begin().unwrap();
        // b's text node: a=02, b=0202, text=020202.
        let stats = replace_value(&txn, &xt, 1, &nid(&[0x02, 0x02, 0x02]), "new").unwrap();
        txn.commit().unwrap();
        assert_eq!(serialize(&xt, &dict), "<a><b>new</b></a>");
        assert_eq!(stats.records_touched, 1);
        assert!(stats.bytes_written > 0);
    }

    #[test]
    fn replace_attribute_value() {
        let (xt, dict, txns) = store(r#"<a x="1"><b/></a>"#, 3500);
        let txn = txns.begin().unwrap();
        replace_value(&txn, &xt, 1, &nid(&[0x02, 0x02]), "42").unwrap();
        txn.commit().unwrap();
        assert_eq!(serialize(&xt, &dict), r#"<a x="42"><b/></a>"#);
    }

    #[test]
    fn delete_subtree() {
        let (xt, dict, txns) = store("<a><b><x>1</x></b><c>2</c></a>", 3500);
        let txn = txns.begin().unwrap();
        delete_node(&txn, &xt, 1, &nid(&[0x02, 0x02])).unwrap();
        txn.commit().unwrap();
        assert_eq!(serialize(&xt, &dict), "<a><c>2</c></a>");
    }

    #[test]
    fn delete_spilled_subtree_reclaims_records() {
        let filler = "d".repeat(400);
        let doc = format!("<a><big><p>{filler}</p><q>{filler}</q></big><keep>k</keep></a>");
        let (xt, dict, txns) = store(&doc, 500);
        let before = xt.heap().stats().unwrap().records;
        assert!(before > 1, "expected spilled records");
        let txn = txns.begin().unwrap();
        delete_node(&txn, &xt, 1, &nid(&[0x02, 0x02])).unwrap();
        txn.commit().unwrap();
        assert_eq!(serialize(&xt, &dict), "<a><keep>k</keep></a>");
        let after = xt.heap().stats().unwrap().records;
        assert!(
            after < before,
            "spilled records reclaimed: {before} -> {after}"
        );
    }

    #[test]
    fn insert_first_last_before_after() {
        let (xt, dict, txns) = store("<a><m>1</m><m>2</m></a>", 3500);
        let a = nid(&[0x02]);
        let m1 = nid(&[0x02, 0x02]);
        let m2 = nid(&[0x02, 0x04]);
        let txn = txns.begin().unwrap();
        insert_fragment(&txn, &xt, 1, &dict, &a, InsertPos::First, "<f/>").unwrap();
        insert_fragment(&txn, &xt, 1, &dict, &a, InsertPos::Last, "<l/>").unwrap();
        insert_fragment(
            &txn,
            &xt,
            1,
            &dict,
            &a,
            InsertPos::Before(m2.clone()),
            "<b2/>",
        )
        .unwrap();
        insert_fragment(
            &txn,
            &xt,
            1,
            &dict,
            &a,
            InsertPos::After(m1.clone()),
            "<a1/>",
        )
        .unwrap();
        txn.commit().unwrap();
        assert_eq!(
            serialize(&xt, &dict),
            "<a><f/><m>1</m><a1/><b2/><m>2</m><l/></a>"
        );
    }

    #[test]
    fn repeated_middle_insertion_stays_stable() {
        // The §3.1 stability claim: midpoint insertion never renumbers.
        let (xt, dict, txns) = store("<a><x>L</x><x>R</x></a>", 3500);
        let a = nid(&[0x02]);
        let left = nid(&[0x02, 0x02]);
        for i in 0..20 {
            let txn = txns.begin().unwrap();
            insert_fragment(
                &txn,
                &xt,
                1,
                &dict,
                &a,
                InsertPos::After(left.clone()),
                &format!("<m>{i}</m>"),
            )
            .unwrap();
            txn.commit().unwrap();
        }
        let out = serialize(&xt, &dict);
        // L first, R last, 19..0 in the middle (each insert lands right
        // after L, pushing earlier inserts right).
        assert!(out.starts_with("<a><x>L</x><m>19</m>"));
        assert!(out.ends_with("<m>0</m><x>R</x></a>"));
        // The original nodes kept their IDs.
        assert!(xt.locate(1, &left).unwrap().is_some());
        assert_eq!(crate::traverse::string_value(&xt, 1, &left).unwrap(), "L");
    }

    #[test]
    fn growth_spills_record() {
        let (xt, dict, txns) = store("<a><b>tiny</b></a>", 3500);
        // Insert a huge child: the single record must split.
        let big = format!("<huge>{}</huge>", "h".repeat(3000));
        let txn = txns.begin().unwrap();
        let stats =
            insert_fragment(&txn, &xt, 1, &dict, &nid(&[0x02]), InsertPos::Last, &big).unwrap();
        // And another to force > MAX_RECORD_SIZE.
        let stats2 =
            insert_fragment(&txn, &xt, 1, &dict, &nid(&[0x02]), InsertPos::Last, &big).unwrap();
        txn.commit().unwrap();
        assert!(stats.records_touched + stats2.records_touched >= 2);
        let out = serialize(&xt, &dict);
        assert!(out.contains("tiny"));
        assert_eq!(out.matches("<huge>").count(), 2);
    }

    #[test]
    fn update_rollback_restores() {
        let (xt, dict, txns) = store("<a><b>orig</b></a>", 3500);
        let txn = txns.begin().unwrap();
        replace_value(&txn, &xt, 1, &nid(&[0x02, 0x02, 0x02]), "changed").unwrap();
        txn.rollback().unwrap();
        assert_eq!(serialize(&xt, &dict), "<a><b>orig</b></a>");
    }

    #[test]
    fn errors_on_missing_or_wrong_targets() {
        let (xt, dict, txns) = store("<a><b>x</b></a>", 3500);
        let txn = txns.begin().unwrap();
        assert!(replace_value(&txn, &xt, 1, &nid(&[0x7E]), "v").is_err());
        // Replace on an element is invalid.
        assert!(replace_value(&txn, &xt, 1, &nid(&[0x02, 0x02]), "v").is_err());
        // Insert under a text node is invalid.
        assert!(insert_fragment(
            &txn,
            &xt,
            1,
            &dict,
            &nid(&[0x02, 0x02, 0x02]),
            InsertPos::Last,
            "<x/>"
        )
        .is_err());
        txn.rollback().unwrap();
    }
}
