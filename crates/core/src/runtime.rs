//! The virtual-SAX runtime: XML handles, sequences, pipelining (§4.4, Fig. 8).
//!
//! "XML data can be in one of the many forms during the query processing:
//! token stream, persistent store format, constructed format, or in-memory
//! sequence … To avoid data copying and format conversion cost, we do not
//! construct a single unified in-memory tree representation for a task. …
//! To perform one of the tasks, a proper iterator is attached to the data as
//! the input interface according to the data format. … XML handles are widely
//! used to link between relational data and XML data. Fetch of persistent XML
//! data is deferred until when it's necessary."
//!
//! [`XmlHandle`] is that reference construct: it names XML data in any of the
//! four representations without materializing it; [`XmlHandle::replay`]
//! attaches the right iterator and pushes virtual SAX events into whichever
//! shared routine performs the task — serialization, tree construction
//! (packing), or XPath evaluation.

use crate::construct::Constructed;
use crate::db::XmlColumn;
use crate::error::Result;
use crate::traverse::{DropIds, Traverser};
use crate::xmltable::DocId;
use rx_xml::event::{Event, EventSink};
use rx_xml::name::NameDict;
use rx_xml::nodeid::NodeId;
use rx_xml::token::TokenStream;
use rx_xml::value::TypeAnn;
use rx_xpath::quickxscan::QuickXScan;
use rx_xpath::QueryTree;
use std::sync::Arc;

/// A deferred reference to XML data in any runtime representation.
#[derive(Clone)]
pub enum XmlHandle {
    /// Persistent data: `(column, document, optional subtree)`. Nothing is
    /// fetched until the handle is replayed — the §4.4 deferred access.
    Stored {
        /// The XML column.
        column: Arc<XmlColumn>,
        /// Document id.
        doc: DocId,
        /// Subtree root (`None` = whole document).
        node: Option<NodeId>,
    },
    /// A buffered token stream (parser or validator output).
    Tokens(Arc<TokenStream>),
    /// Constructed data: template + data record.
    Constructed(Arc<Constructed>),
    /// An in-memory sequence (XPath/XQuery result).
    Sequence(Arc<Sequence>),
}

impl XmlHandle {
    /// Attach the representation-appropriate iterator and push events into
    /// `sink` (Fig. 8's shared, pipelined routines).
    pub fn replay(&self, sink: &mut dyn EventSink) -> Result<()> {
        match self {
            XmlHandle::Stored { column, doc, node } => {
                let mut t = Traverser::new(column.xml_table(), *doc);
                let mut adapter = DropIds(sink);
                match node {
                    None => t.run(&mut adapter),
                    Some(n) => t.run_subtree(n, &mut adapter),
                }
            }
            XmlHandle::Tokens(stream) => {
                stream.replay(sink)?;
                Ok(())
            }
            XmlHandle::Constructed(c) => c.replay(sink),
            XmlHandle::Sequence(seq) => seq.replay(sink),
        }
    }

    /// Task 1 — serialization: "generate a serialized XML string for output
    /// to applications".
    pub fn serialize(&self, dict: &NameDict) -> Result<String> {
        let mut ser = rx_xml::Serializer::new(dict);
        self.replay(&mut ser)?;
        Ok(ser.finish())
    }

    /// Task 3 — XPath evaluation: "generate an in-memory sequence as result".
    /// Streams straight from this handle's iterator into QuickXScan; for
    /// stored data, results carry node IDs (becoming deferred handles
    /// themselves).
    pub fn query(&self, tree: &QueryTree, dict: &NameDict) -> Result<Sequence> {
        match self {
            XmlHandle::Stored { column, doc, node } => {
                let mut scan = QuickXScan::new(tree, dict);
                let mut t = Traverser::new(column.xml_table(), *doc);
                struct S<'a, 'q, 'd> {
                    scan: &'a mut QuickXScan<'q, 'd>,
                }
                impl crate::traverse::IdEventSink for S<'_, '_, '_> {
                    fn id_event(&mut self, id: &NodeId, ev: Event<'_>) -> Result<()> {
                        self.scan.set_current_node(id.clone());
                        self.scan.event(ev)?;
                        Ok(())
                    }
                }
                match node {
                    None => t.run(&mut S { scan: &mut scan })?,
                    Some(n) => {
                        // Subtree queries still need the document context to
                        // anchor absolute paths; replay the whole document
                        // (deferred handles usually reference whole docs).
                        let _ = n;
                        t.run(&mut S { scan: &mut scan })?;
                    }
                }
                let items = scan.finish()?;
                Ok(Sequence {
                    items: items
                        .into_iter()
                        .map(|i| SeqItem {
                            value: i.value,
                            node: i.node.map(|n| (Arc::clone(column), *doc, n)),
                        })
                        .collect(),
                })
            }
            other => {
                let mut scan = QuickXScan::new(tree, dict);
                scan.event(Event::StartDocument)?;
                other.replay(&mut scan)?;
                scan.event(Event::EndDocument)?;
                let items = scan.finish()?;
                Ok(Sequence {
                    items: items
                        .into_iter()
                        .map(|i| SeqItem {
                            value: i.value,
                            node: None,
                        })
                        .collect(),
                })
            }
        }
    }
}

/// One item of an in-memory sequence: an atomic/string value, optionally
/// backed by a stored node (making the item itself a deferred handle).
#[derive(Clone)]
pub struct SeqItem {
    /// The item's string value.
    pub value: String,
    /// Backing stored node, when the item came from persistent data.
    pub node: Option<(Arc<XmlColumn>, DocId, NodeId)>,
}

/// An in-memory sequence — the result form of XPath evaluation (§4.4).
#[derive(Clone, Default)]
pub struct Sequence {
    /// Items in document order.
    pub items: Vec<SeqItem>,
}

impl Sequence {
    /// Number of items.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Replay the sequence as events: stored nodes replay their subtrees
    /// (deferred fetch happens *here*, not before), plain values become text.
    pub fn replay(&self, sink: &mut dyn EventSink) -> Result<()> {
        for item in &self.items {
            match &item.node {
                Some((column, doc, node)) => {
                    let mut t = Traverser::new(column.xml_table(), *doc);
                    let mut adapter = DropIds(sink);
                    t.run_subtree(node, &mut adapter)?;
                }
                None => sink.event(Event::Text {
                    value: &item.value,
                    ann: TypeAnn::Untyped,
                })?,
            }
        }
        Ok(())
    }

    /// Serialize all items.
    pub fn serialize(&self, dict: &NameDict) -> Result<String> {
        let mut ser = rx_xml::Serializer::new(dict);
        self.replay(&mut ser)?;
        Ok(ser.finish())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::construct::{fig5_emp_ctor, Constructed, Template};
    use crate::db::{ColValue, ColumnKind, Database};
    use rx_xpath::XPathParser;

    #[test]
    fn stored_handle_defers_and_serializes() {
        let db = Database::create_in_memory().unwrap();
        let t = db.create_table("t", &[("doc", ColumnKind::Xml)]).unwrap();
        let text = "<cat><p>one</p><p>two</p></cat>";
        let doc = db
            .insert_row(&t, &[ColValue::Xml(text.to_string())])
            .unwrap();
        let h = XmlHandle::Stored {
            column: Arc::clone(t.xml_column("doc").unwrap()),
            doc,
            node: None,
        };
        assert_eq!(h.serialize(db.dict()).unwrap(), text);
    }

    #[test]
    fn stored_handle_queries_into_sequence_of_handles() {
        let db = Database::create_in_memory().unwrap();
        let t = db.create_table("t", &[("doc", ColumnKind::Xml)]).unwrap();
        let doc = db
            .insert_row(
                &t,
                &[ColValue::Xml(
                    "<cat><p><n>a</n></p><p><n>b</n></p></cat>".to_string(),
                )],
            )
            .unwrap();
        let h = XmlHandle::Stored {
            column: Arc::clone(t.xml_column("doc").unwrap()),
            doc,
            node: None,
        };
        let path = XPathParser::new().parse("/cat/p").unwrap();
        let tree = QueryTree::compile(&path).unwrap();
        let seq = h.query(&tree, db.dict()).unwrap();
        assert_eq!(seq.len(), 2);
        // The sequence items are stored-node handles: serializing them
        // re-fetches the subtrees (deferred access).
        assert_eq!(
            seq.serialize(db.dict()).unwrap(),
            "<p><n>a</n></p><p><n>b</n></p>"
        );
    }

    #[test]
    fn token_and_constructed_handles_share_the_runtime() {
        let db = Database::create_in_memory().unwrap();
        let dict = db.dict();
        // Token stream handle.
        let stream = rx_xml::Parser::new(dict)
            .parse_to_tokens("<r><v>42</v></r>")
            .unwrap();
        let h = XmlHandle::Tokens(Arc::new(stream));
        assert_eq!(h.serialize(dict).unwrap(), "<r><v>42</v></r>");
        let path = XPathParser::new().parse("/r/v").unwrap();
        let tree = QueryTree::compile(&path).unwrap();
        let seq = h.query(&tree, dict).unwrap();
        assert_eq!(seq.items[0].value, "42");
        // Constructed handle.
        let tpl = Template::compile(&fig5_emp_ctor(), dict).unwrap();
        let c = Constructed::new(
            tpl,
            vec![
                "7".into(),
                "Ada".into(),
                "L".into(),
                "1843-01-01".into(),
                "Math".into(),
            ],
        )
        .unwrap();
        let h = XmlHandle::Constructed(Arc::new(c));
        let path = XPathParser::new().parse("/Emp/@name").unwrap();
        let tree = QueryTree::compile(&path).unwrap();
        let seq = h.query(&tree, dict).unwrap();
        assert_eq!(seq.items[0].value, "Ada L");
    }
}
