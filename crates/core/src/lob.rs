//! Baseline: LOB storage of XML documents.
//!
//! §3.1: "the limited operations for LOBs impose significant restrictions on
//! XML subdocument update if XML data were stored as LOB." Here a document is
//! an opaque byte string chunked across heap records; the only operations are
//! read-all and replace-all, so *any* sub-document update re-parses,
//! re-serializes and rewrites the entire document — the cost E3 measures
//! against the native packed format.

use crate::error::{EngineError, Result};
use crate::xmltable::DocId;
use rx_storage::{BTree, HeapTable, Rid, TableSpace};
use std::sync::Arc;

/// Anchor of the LOB directory index.
pub const LOB_DIR_ANCHOR: usize = 2;

/// Chunk payload size (fits a heap record with headroom).
pub const LOB_CHUNK: usize = 3800;

fn chunk_key(doc: DocId, seq: u32) -> Vec<u8> {
    let mut k = Vec::with_capacity(12);
    k.extend_from_slice(&doc.to_be_bytes());
    k.extend_from_slice(&seq.to_be_bytes());
    k
}

/// A LOB store for XML documents.
pub struct LobStore {
    heap: Arc<HeapTable>,
    dir: Arc<BTree>,
}

impl LobStore {
    /// Create in `space`.
    pub fn create(space: Arc<TableSpace>) -> Result<LobStore> {
        let heap = HeapTable::create(space.clone())?;
        let dir = BTree::create(space, LOB_DIR_ANCHOR)?;
        Ok(LobStore { heap, dir })
    }

    /// Store a document's text, chunked. Returns bytes written.
    pub fn insert(&self, doc: DocId, text: &str) -> Result<u64> {
        let bytes = text.as_bytes();
        let mut written = 0u64;
        for (seq, chunk) in bytes.chunks(LOB_CHUNK).enumerate() {
            let rid = self.heap.insert(chunk)?;
            self.dir.insert(&chunk_key(doc, seq as u32), rid.to_u64())?;
            written += chunk.len() as u64;
        }
        if bytes.is_empty() {
            let rid = self.heap.insert(&[])?;
            self.dir.insert(&chunk_key(doc, 0), rid.to_u64())?;
        }
        Ok(written)
    }

    /// Read the whole document back.
    pub fn read(&self, doc: DocId) -> Result<String> {
        let mut out: Vec<u8> = Vec::new();
        let mut found = false;
        self.dir.scan_prefix(&doc.to_be_bytes(), |_, v| {
            found = true;
            if let Ok(chunk) = self.heap.fetch(Rid::from_u64(v)) {
                out.extend_from_slice(&chunk);
            }
            true
        })?;
        if !found {
            return Err(EngineError::NotFound {
                kind: "document",
                name: format!("docid {doc}"),
            });
        }
        String::from_utf8(out).map_err(|_| EngineError::Record("LOB is not UTF-8".into()))
    }

    /// Delete all chunks of a document.
    pub fn delete(&self, doc: DocId) -> Result<()> {
        let mut keys: Vec<(Vec<u8>, Rid)> = Vec::new();
        self.dir.scan_prefix(&doc.to_be_bytes(), |k, v| {
            keys.push((k.to_vec(), Rid::from_u64(v)));
            true
        })?;
        for (k, rid) in keys {
            self.dir.delete(&k)?;
            self.heap.delete(rid)?;
        }
        Ok(())
    }

    /// Replace the whole document (the only way LOBs update). Returns bytes
    /// written — always the full document size.
    pub fn replace(&self, doc: DocId, text: &str) -> Result<u64> {
        self.delete(doc)?;
        self.insert(doc, text)
    }

    /// "Sub-document update" under LOB storage: read all, edit the text,
    /// rewrite all. `edit` maps the old document text to the new one.
    /// Returns (bytes read, bytes written).
    pub fn update_via_rewrite(
        &self,
        doc: DocId,
        edit: impl FnOnce(String) -> Result<String>,
    ) -> Result<(u64, u64)> {
        let old = self.read(doc)?;
        let read = old.len() as u64;
        let new = edit(old)?;
        let written = self.replace(doc, &new)?;
        Ok((read, written))
    }

    /// Storage statistics: (heap pages, chunks, chunk bytes).
    pub fn stats(&self) -> Result<(u64, u64, u64)> {
        let h = self.heap.stats()?;
        Ok((h.pages, h.records, h.record_bytes))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rx_storage::{BufferPool, MemBackend};

    fn store() -> LobStore {
        let pool = BufferPool::new(2048);
        let space = TableSpace::create(pool, 40, Arc::new(MemBackend::new())).unwrap();
        LobStore::create(space).unwrap()
    }

    #[test]
    fn roundtrip_small_and_large() {
        let s = store();
        s.insert(1, "<a>small</a>").unwrap();
        let big = format!("<r>{}</r>", "x".repeat(20_000));
        s.insert(2, &big).unwrap();
        assert_eq!(s.read(1).unwrap(), "<a>small</a>");
        assert_eq!(s.read(2).unwrap(), big);
        let (_, chunks, _) = s.stats().unwrap();
        assert!(chunks > 5, "large doc must span chunks, got {chunks}");
    }

    #[test]
    fn update_rewrites_everything() {
        let s = store();
        let doc = format!("<r><v>old</v>{}</r>", "pad".repeat(3000));
        let size = doc.len() as u64;
        s.insert(1, &doc).unwrap();
        let (read, written) = s
            .update_via_rewrite(1, |text| Ok(text.replace("<v>old</v>", "<v>new</v>")))
            .unwrap();
        assert_eq!(read, size, "whole document read");
        assert_eq!(written, size, "whole document rewritten");
        assert!(s.read(1).unwrap().contains("<v>new</v>"));
    }

    #[test]
    fn delete_and_missing() {
        let s = store();
        s.insert(5, "<x/>").unwrap();
        s.delete(5).unwrap();
        assert!(s.read(5).is_err());
        assert!(s.read(99).is_err());
    }
}
