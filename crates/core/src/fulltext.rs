//! Full-text search — the paper's named future-work item (§6: "new
//! capabilities, such as more complete XQuery and full-text search"),
//! implemented the way the rest of the engine would have grown: as another
//! index family on the same B+tree infrastructure.
//!
//! A full-text index is declared like an XPath value index (§3.3) — a simple
//! path naming the nodes to index — but instead of one typed key per node it
//! tokenizes each node's string value and stores one posting per distinct
//! term: key = `escape(term) ++ DocID ++ NodeID`, value = RID. Term lookups,
//! AND over several terms (DocID- or NodeID-level, mirroring the §4.3
//! ANDing machinery), and phrase-free `contains` semantics come out of plain
//! B+tree range scans.
//!
//! Note the §6 caveat the paper itself raises: full-text over the XQuery
//! data model alone cannot give byte-for-byte content retrieval; this index
//! serves data-centric search, exactly like the rest of the engine.

use crate::error::{EngineError, Result};
use crate::pack::NodeObserver;
use crate::validx::{escape_keyval, escape_keyval_upper};
use crate::xmltable::{DocId, XmlTable};
use rx_storage::wal::LogRecord;
use rx_storage::{BTree, Rid, TableSpace, Txn};
use rx_xml::event::{Event, EventSink};
use rx_xml::name::NameDict;
use rx_xml::nodeid::NodeId;
use rx_xpath::quickxscan::{QuickXScan, ResultItem};
use rx_xpath::{Path, QueryTree, XPathParser};
use std::collections::BTreeSet;
use std::sync::Arc;

/// Anchor slot of the posting B+tree within the index's table space.
pub const FULLTEXT_ANCHOR: usize = 0;

/// Tokenize a string value into normalized terms: lowercase alphanumeric
/// runs, deduplicated (presence semantics, not term frequency).
pub fn tokenize(value: &str) -> BTreeSet<String> {
    let mut terms = BTreeSet::new();
    let mut cur = String::new();
    for ch in value.chars() {
        if ch.is_alphanumeric() {
            cur.extend(ch.to_lowercase());
        } else if !cur.is_empty() {
            terms.insert(std::mem::take(&mut cur));
        }
    }
    if !cur.is_empty() {
        terms.insert(cur);
    }
    terms
}

/// One posting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Posting {
    /// Owning document.
    pub doc: DocId,
    /// The indexed node whose value contains the term.
    pub node: NodeId,
    /// Record containing the node.
    pub rid: Rid,
}

/// Definition persisted in the catalog.
#[derive(Debug, Clone, PartialEq)]
pub struct FullTextIndexDef {
    /// Index name.
    pub name: String,
    /// Simple path naming the nodes whose string values are indexed.
    pub path_text: String,
    /// Table space of the posting tree.
    pub space_id: u32,
}

/// A live full-text index.
pub struct FullTextIndex {
    /// Persistent definition.
    pub def: FullTextIndexDef,
    /// Parsed index path.
    pub path: Path,
    /// Compiled query tree for posting generation at insert time.
    pub tree: QueryTree,
    btree: Arc<BTree>,
}

fn posting_key(term: &str, doc: DocId, node: &NodeId) -> Vec<u8> {
    let mut k = escape_keyval(term.as_bytes());
    k.extend_from_slice(&doc.to_be_bytes());
    k.extend_from_slice(node.as_bytes());
    k
}

fn decode_posting_key(key: &[u8]) -> Result<(DocId, NodeId)> {
    // Skip the escaped term: find the 0x00 0x00 terminator.
    let mut i = 0usize;
    loop {
        let b = *key
            .get(i)
            .ok_or_else(|| EngineError::Record("truncated posting key".into()))?;
        if b == 0x00 {
            let n = *key
                .get(i + 1)
                .ok_or_else(|| EngineError::Record("truncated posting escape".into()))?;
            i += 2;
            if n == 0x00 {
                break;
            }
        } else {
            i += 1;
        }
    }
    let doc_bytes = key
        .get(i..i + 8)
        .ok_or_else(|| EngineError::Record("posting key missing DocID".into()))?;
    let doc = DocId::from_be_bytes(doc_bytes.try_into().unwrap());
    Ok((doc, NodeId::from_bytes_unchecked(key[i + 8..].to_vec())))
}

impl FullTextIndex {
    /// Create the posting tree in `space`.
    pub fn create(space: Arc<TableSpace>, def: FullTextIndexDef) -> Result<FullTextIndex> {
        let path = XPathParser::new().parse(&def.path_text)?;
        if !path.is_simple() {
            return Err(EngineError::Invalid(format!(
                "full-text index path {:?} must be a simple path",
                def.path_text
            )));
        }
        let tree = QueryTree::compile(&path)?;
        let btree = BTree::create(space, FULLTEXT_ANCHOR)?;
        Ok(FullTextIndex {
            def,
            path,
            tree,
            btree,
        })
    }

    /// Open an existing index.
    pub fn open(space: Arc<TableSpace>, def: FullTextIndexDef) -> Result<FullTextIndex> {
        let path = XPathParser::new().parse(&def.path_text)?;
        let tree = QueryTree::compile(&path)?;
        let btree = BTree::open(space, FULLTEXT_ANCHOR)?;
        Ok(FullTextIndex {
            def,
            path,
            tree,
            btree,
        })
    }

    /// Index the postings of QuickXScan results for document `doc`.
    pub fn insert_entries(
        &self,
        txn: &Txn,
        doc: DocId,
        xml: &XmlTable,
        items: &[ResultItem],
    ) -> Result<u64> {
        let mut inserted = 0u64;
        for item in items {
            let Some(node) = &item.node else { continue };
            let Some(rid) = xml.locate(doc, node)? else {
                return Err(EngineError::Record(format!(
                    "indexed node {node} of doc {doc} has no record"
                )));
            };
            for term in tokenize(&item.value) {
                let key = posting_key(&term, doc, node);
                let prev = self.btree.insert(&key, rid.to_u64())?;
                txn.log(&LogRecord::IndexInsert {
                    txn: txn.id(),
                    space: self.def.space_id,
                    anchor: FULLTEXT_ANCHOR as u32,
                    key: key.clone(),
                    value: rid.to_u64(),
                    prev,
                })?;
                let btree = Arc::clone(&self.btree);
                let space = self.def.space_id;
                let rid_val = rid.to_u64();
                txn.push_undo(Box::new(move |ctx| {
                    match prev {
                        Some(p) => {
                            ctx.log(&LogRecord::IndexInsert {
                                txn: ctx.txn(),
                                space,
                                anchor: FULLTEXT_ANCHOR as u32,
                                key: key.clone(),
                                value: p,
                                prev: None,
                            })?;
                            btree.insert(&key, p)?;
                        }
                        None => {
                            ctx.log(&LogRecord::IndexDelete {
                                txn: ctx.txn(),
                                space,
                                anchor: FULLTEXT_ANCHOR as u32,
                                key: key.clone(),
                                value: rid_val,
                            })?;
                            btree.delete(&key)?;
                        }
                    }
                    Ok(())
                }));
                inserted += 1;
            }
        }
        Ok(inserted)
    }

    /// Remove the postings of `items` for document `doc`.
    pub fn delete_entries(&self, txn: &Txn, doc: DocId, items: &[ResultItem]) -> Result<u64> {
        let mut removed = 0u64;
        for item in items {
            let Some(node) = &item.node else { continue };
            for term in tokenize(&item.value) {
                let key = posting_key(&term, doc, node);
                if let Some(v) = self.btree.delete(&key)? {
                    txn.log(&LogRecord::IndexDelete {
                        txn: txn.id(),
                        space: self.def.space_id,
                        anchor: FULLTEXT_ANCHOR as u32,
                        key: key.clone(),
                        value: v,
                    })?;
                    let btree = Arc::clone(&self.btree);
                    let space = self.def.space_id;
                    txn.push_undo(Box::new(move |ctx| {
                        ctx.log(&LogRecord::IndexInsert {
                            txn: ctx.txn(),
                            space,
                            anchor: FULLTEXT_ANCHOR as u32,
                            key: key.clone(),
                            value: v,
                            prev: None,
                        })?;
                        btree.insert(&key, v)?;
                        Ok(())
                    }));
                    removed += 1;
                }
            }
        }
        Ok(removed)
    }

    /// All postings of one term.
    pub fn search_term(&self, term: &str) -> Result<Vec<Posting>> {
        let normalized: Vec<String> = tokenize(term).into_iter().collect();
        let Some(t) = normalized.first() else {
            return Ok(Vec::new());
        };
        let lo = escape_keyval(t.as_bytes());
        let hi = escape_keyval_upper(t.as_bytes());
        let mut out = Vec::new();
        let mut err = None;
        self.btree.scan_from(&lo, |k, v| {
            if k >= hi.as_slice() {
                return false;
            }
            match decode_posting_key(k) {
                Ok((doc, node)) => out.push(Posting {
                    doc,
                    node,
                    rid: Rid::from_u64(v),
                }),
                Err(e) => {
                    err = Some(e);
                    return false;
                }
            }
            true
        })?;
        if let Some(e) = err {
            return Err(e);
        }
        Ok(out)
    }

    /// Documents containing *all* the given terms (DocID-level ANDing, the
    /// §4.3 combiner applied to postings).
    pub fn search_all_terms(&self, query: &str) -> Result<Vec<DocId>> {
        let terms: Vec<String> = tokenize(query).into_iter().collect();
        if terms.is_empty() {
            return Ok(Vec::new());
        }
        let mut acc: Option<BTreeSet<DocId>> = None;
        for t in &terms {
            let docs: BTreeSet<DocId> = self.search_term(t)?.into_iter().map(|p| p.doc).collect();
            acc = Some(match acc {
                None => docs,
                Some(prev) => prev.intersection(&docs).copied().collect(),
            });
            if acc.as_ref().is_some_and(BTreeSet::is_empty) {
                break;
            }
        }
        Ok(acc.unwrap_or_default().into_iter().collect())
    }

    /// Nodes containing all the given terms in the *same* indexed node
    /// (NodeID-level ANDing).
    pub fn search_all_terms_same_node(&self, query: &str) -> Result<Vec<(DocId, NodeId)>> {
        let terms: Vec<String> = tokenize(query).into_iter().collect();
        if terms.is_empty() {
            return Ok(Vec::new());
        }
        let mut acc: Option<BTreeSet<(DocId, Vec<u8>)>> = None;
        for t in &terms {
            let nodes: BTreeSet<(DocId, Vec<u8>)> = self
                .search_term(t)?
                .into_iter()
                .map(|p| (p.doc, p.node.as_bytes().to_vec()))
                .collect();
            acc = Some(match acc {
                None => nodes,
                Some(prev) => prev.intersection(&nodes).cloned().collect(),
            });
            if acc.as_ref().is_some_and(BTreeSet::is_empty) {
                break;
            }
        }
        Ok(acc
            .unwrap_or_default()
            .into_iter()
            .map(|(d, n)| (d, NodeId::from_bytes_unchecked(n)))
            .collect())
    }

    /// Number of postings.
    pub fn len(&self) -> Result<u64> {
        Ok(self.btree.len()?)
    }

    /// True when no postings exist.
    pub fn is_empty(&self) -> Result<bool> {
        Ok(self.btree.is_empty()?)
    }

    /// The underlying B+tree (recovery wiring).
    pub fn btree_arc(&self) -> Arc<BTree> {
        Arc::clone(&self.btree)
    }
}

/// Posting-generation observer for the packer (same role as
/// [`crate::validx::IndexKeyGen`]).
pub struct FullTextKeyGen<'q, 'd> {
    scans: Vec<QuickXScan<'q, 'd>>,
}

impl<'q, 'd> FullTextKeyGen<'q, 'd> {
    /// Build scans for the given index query trees.
    pub fn new(trees: &'q [QueryTree], dict: &'d NameDict) -> Self {
        FullTextKeyGen {
            scans: trees.iter().map(|t| QuickXScan::new(t, dict)).collect(),
        }
    }

    /// Finish, returning per-index result items.
    pub fn finish(self) -> Result<Vec<Vec<ResultItem>>> {
        self.scans
            .into_iter()
            .map(|s| s.finish().map_err(EngineError::from))
            .collect()
    }
}

impl NodeObserver for FullTextKeyGen<'_, '_> {
    fn node(&mut self, id: &NodeId, ev: &Event<'_>) -> Result<()> {
        for scan in &mut self.scans {
            scan.set_current_node(id.clone());
            scan.event(*ev)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pack::Packer;
    use rx_storage::wal::{MemLogStore, Wal};
    use rx_storage::{BufferPool, LockManager, MemBackend, TxnManager};
    use rx_xml::Parser;

    #[test]
    fn tokenizer() {
        let terms = tokenize("The Quick-Brown FOX, fox; jumps 42 times!");
        let expect: Vec<&str> = vec!["42", "brown", "fox", "jumps", "quick", "the", "times"];
        assert_eq!(terms.into_iter().collect::<Vec<_>>(), expect);
        assert!(tokenize("").is_empty());
        assert!(tokenize("  ,;  ").is_empty());
    }

    fn setup() -> (XmlTable, FullTextIndex, Arc<TxnManager>, NameDict) {
        let pool = BufferPool::new(2048);
        let xspace = TableSpace::create(pool.clone(), 10, Arc::new(MemBackend::new())).unwrap();
        let ispace = TableSpace::create(pool, 11, Arc::new(MemBackend::new())).unwrap();
        let xt = XmlTable::create(xspace).unwrap();
        let fti = FullTextIndex::create(
            ispace,
            FullTextIndexDef {
                name: "fti".into(),
                path_text: "//Description".into(),
                space_id: 11,
            },
        )
        .unwrap();
        let txns = TxnManager::new(
            Wal::new(Arc::new(MemLogStore::new())),
            LockManager::with_defaults(),
        );
        (xt, fti, txns, NameDict::new())
    }

    fn insert(
        xt: &XmlTable,
        fti: &FullTextIndex,
        txns: &Arc<TxnManager>,
        dict: &NameDict,
        doc: DocId,
        text: &str,
    ) {
        let trees = vec![fti.tree.clone()];
        let mut keygen = FullTextKeyGen::new(&trees, dict);
        let mut records = Vec::new();
        let mut packer = Packer::with_target(800, &mut records, &mut keygen);
        Parser::new(dict).parse(text, &mut packer).unwrap();
        packer.finish().unwrap();
        let txn = txns.begin().unwrap();
        for r in &records {
            xt.insert_record(&txn, doc, r).unwrap();
        }
        let items = keygen.finish().unwrap();
        fti.insert_entries(&txn, doc, xt, &items[0]).unwrap();
        txn.commit().unwrap();
    }

    #[test]
    fn term_search_and_anding() {
        let (xt, fti, txns, dict) = setup();
        insert(
            &xt,
            &fti,
            &txns,
            &dict,
            1,
            "<p><Description>durable portable widget</Description></p>",
        );
        insert(
            &xt,
            &fti,
            &txns,
            &dict,
            2,
            "<p><Description>durable enterprise gadget</Description></p>",
        );
        insert(
            &xt,
            &fti,
            &txns,
            &dict,
            3,
            "<p><Description>Portable Gadget</Description></p>",
        );

        // Single terms (case-insensitive).
        let docs: Vec<DocId> = fti
            .search_term("DURABLE")
            .unwrap()
            .iter()
            .map(|p| p.doc)
            .collect();
        assert_eq!(docs, vec![1, 2]);
        let docs: Vec<DocId> = fti
            .search_term("portable")
            .unwrap()
            .iter()
            .map(|p| p.doc)
            .collect();
        assert_eq!(docs, vec![1, 3]);
        assert!(fti.search_term("missing").unwrap().is_empty());

        // AND across terms.
        assert_eq!(fti.search_all_terms("durable portable").unwrap(), vec![1]);
        assert_eq!(fti.search_all_terms("portable gadget").unwrap(), vec![3]);
        assert!(fti.search_all_terms("durable missing").unwrap().is_empty());
    }

    #[test]
    fn same_node_anding_is_stricter() {
        let (xt, fti, txns, dict) = setup();
        // Two Description nodes in one doc, terms split across them.
        insert(
            &xt,
            &fti,
            &txns,
            &dict,
            1,
            "<p><Description>alpha beta</Description><Description>gamma</Description></p>",
        );
        // Doc-level AND finds it; node-level does not.
        assert_eq!(fti.search_all_terms("alpha gamma").unwrap(), vec![1]);
        assert!(fti
            .search_all_terms_same_node("alpha gamma")
            .unwrap()
            .is_empty());
        assert_eq!(
            fti.search_all_terms_same_node("alpha beta").unwrap().len(),
            1
        );
    }

    #[test]
    fn postings_point_into_records() {
        let (xt, fti, txns, dict) = setup();
        insert(
            &xt,
            &fti,
            &txns,
            &dict,
            9,
            "<p><Description>needle in haystack</Description></p>",
        );
        let p = &fti.search_term("needle").unwrap()[0];
        // The posting's node resolves through the NodeID index and the RID
        // leads to a record of the right document.
        let row = xt.fetch(p.rid).unwrap();
        assert_eq!(row.doc, 9);
        let sv = crate::traverse::string_value(&xt, 9, &p.node).unwrap();
        assert!(sv.contains("needle"));
    }

    #[test]
    fn rollback_removes_postings() {
        let (xt, fti, txns, dict) = setup();
        let trees = vec![fti.tree.clone()];
        let mut keygen = FullTextKeyGen::new(&trees, &dict);
        let mut records = Vec::new();
        let mut packer = Packer::with_target(800, &mut records, &mut keygen);
        Parser::new(&dict)
            .parse("<p><Description>ghost words</Description></p>", &mut packer)
            .unwrap();
        packer.finish().unwrap();
        let txn = txns.begin().unwrap();
        for r in &records {
            xt.insert_record(&txn, 1, r).unwrap();
        }
        let items = keygen.finish().unwrap();
        fti.insert_entries(&txn, 1, &xt, &items[0]).unwrap();
        txn.rollback().unwrap();
        assert!(fti.is_empty().unwrap());
    }

    #[test]
    fn rejects_predicate_paths() {
        let pool = BufferPool::new(64);
        let space = TableSpace::create(pool, 5, Arc::new(MemBackend::new())).unwrap();
        assert!(FullTextIndex::create(
            space,
            FullTextIndexDef {
                name: "x".into(),
                path_text: "//a[b]".into(),
                space_id: 5,
            }
        )
        .is_err());
    }
}
