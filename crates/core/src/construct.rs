//! SQL/XML and XQuery constructor functions (§4.1, Fig. 5).
//!
//! "We optimize constructor functions by flattening the nested functions into
//! one function and represent the nesting structure with a tagging template …
//! The result of the constructor functions is an intermediate result
//! representation that includes a pointer to the template with a data record
//! … This intermediate result is optimized because no repetition of the
//! tagging template occurs, which is very effective for generating XML for
//! large number of repeated rows or the aggregate function XMLAGG."
//!
//! "In addition, for XMLAGG ORDER BY evaluation, typical external SORT will
//! need to sort each group of rows, suffering from significant overhead. We
//! apply in-memory quicksort to the linked list representation of rows in
//! each group of XMLAGG, achieving high performance."
//!
//! This module provides: the constructor expression tree
//! ([`Ctor`]/[`ValueExpr`], modeling XMLELEMENT / XMLATTRIBUTES / XMLFOREST /
//! XMLTEXT / XMLCOMMENT), compilation into a [`Template`] with argument
//! slots, the `(template, data record)` intermediate form ([`Constructed`]),
//! [`XmlAgg`] with linked-list quicksort, and the two *baselines* E7 measures
//! against: per-row naive evaluation ([`naive_construct_string`]) and
//! external-style run sorting ([`external_sort_rows`]).

use crate::error::{EngineError, Result};
use rx_xml::event::{Event, EventSink};
use rx_xml::name::{NameDict, QNameId};
use rx_xml::value::TypeAnn;
use std::sync::Arc;

/// A scalar value expression inside a constructor (column reference,
/// literal, or concatenation — e.g. `e.fname || ' ' || e.lname`).
#[derive(Debug, Clone, PartialEq)]
pub enum ValueExpr {
    /// Argument slot `i` of the data record.
    Column(usize),
    /// A string literal.
    Literal(String),
    /// Concatenation of parts.
    Concat(Vec<ValueExpr>),
}

/// A constructor-time attribute (`XMLATTRIBUTES(expr AS "name")`).
#[derive(Debug, Clone, PartialEq)]
pub struct CtorAttr {
    /// Attribute name.
    pub name: String,
    /// Value expression.
    pub value: ValueExpr,
}

/// A constructor expression (the nested SQL/XML functions).
#[derive(Debug, Clone, PartialEq)]
pub enum Ctor {
    /// `XMLELEMENT(NAME "n", XMLATTRIBUTES(...), content...)`.
    Element {
        /// Element name.
        name: String,
        /// Attributes.
        attrs: Vec<CtorAttr>,
        /// Child constructors.
        content: Vec<Ctor>,
    },
    /// `XMLFOREST(expr AS "name", ...)` — one element per named expression.
    Forest(Vec<(String, ValueExpr)>),
    /// A text node from a value expression.
    Text(ValueExpr),
    /// A comment node.
    Comment(ValueExpr),
}

// ---------------------------------------------------------------------------
// Template compilation
// ---------------------------------------------------------------------------

/// One piece of an interpolated value.
#[derive(Debug, Clone, PartialEq)]
pub enum Part {
    /// Constant text.
    Const(String),
    /// The argument in slot `i` ("which argument to fill in", Fig. 5).
    Slot(usize),
}

/// One operation of a flattened tagging template.
#[derive(Debug, Clone, PartialEq)]
pub enum TOp {
    /// Open an element.
    Start(QNameId),
    /// Close the current element.
    End,
    /// Emit an attribute with interpolated value.
    Attr {
        /// Attribute name.
        name: QNameId,
        /// Value parts.
        parts: Vec<Part>,
    },
    /// Emit a text node with interpolated value.
    Text {
        /// Value parts.
        parts: Vec<Part>,
    },
    /// Emit a comment.
    Comment {
        /// Value parts.
        parts: Vec<Part>,
    },
}

/// A compiled tagging template: the shared, flattened structure of Fig. 5.
#[derive(Debug, Clone, PartialEq)]
pub struct Template {
    /// Flattened operations.
    pub ops: Vec<TOp>,
    /// Number of argument slots the data record must supply.
    pub slots: usize,
}

fn flatten_value(v: &ValueExpr, parts: &mut Vec<Part>, max_slot: &mut usize) {
    match v {
        ValueExpr::Column(i) => {
            *max_slot = (*max_slot).max(*i + 1);
            parts.push(Part::Slot(*i));
        }
        ValueExpr::Literal(s) => parts.push(Part::Const(s.clone())),
        ValueExpr::Concat(vs) => {
            for v in vs {
                flatten_value(v, parts, max_slot);
            }
        }
    }
}

impl Template {
    /// Flatten a constructor tree into a template (the §4.1 optimization:
    /// compiled once, shared by every row).
    pub fn compile(ctor: &Ctor, dict: &NameDict) -> Result<Arc<Template>> {
        let mut t = Template {
            ops: Vec::new(),
            slots: 0,
        };
        t.emit(ctor, dict)?;
        Ok(Arc::new(t))
    }

    fn emit(&mut self, ctor: &Ctor, dict: &NameDict) -> Result<()> {
        match ctor {
            Ctor::Element {
                name,
                attrs,
                content,
            } => {
                self.ops.push(TOp::Start(dict.intern("", "", name)));
                for a in attrs {
                    let mut parts = Vec::new();
                    flatten_value(&a.value, &mut parts, &mut self.slots);
                    self.ops.push(TOp::Attr {
                        name: dict.intern("", "", &a.name),
                        parts,
                    });
                }
                for c in content {
                    self.emit(c, dict)?;
                }
                self.ops.push(TOp::End);
            }
            Ctor::Forest(items) => {
                for (name, v) in items {
                    self.ops.push(TOp::Start(dict.intern("", "", name)));
                    let mut parts = Vec::new();
                    flatten_value(v, &mut parts, &mut self.slots);
                    self.ops.push(TOp::Text { parts });
                    self.ops.push(TOp::End);
                }
            }
            Ctor::Text(v) => {
                let mut parts = Vec::new();
                flatten_value(v, &mut parts, &mut self.slots);
                self.ops.push(TOp::Text { parts });
            }
            Ctor::Comment(v) => {
                let mut parts = Vec::new();
                flatten_value(v, &mut parts, &mut self.slots);
                self.ops.push(TOp::Comment { parts });
            }
        }
        Ok(())
    }
}

fn fill(parts: &[Part], args: &[String], out: &mut String) {
    for p in parts {
        match p {
            Part::Const(s) => out.push_str(s),
            Part::Slot(i) => out.push_str(args.get(*i).map_or("", String::as_str)),
        }
    }
}

/// The intermediate result of a constructor over one row: "a pointer to the
/// template with a data record" (Fig. 5 bottom). Replayable as virtual SAX
/// events, so it serializes / packs / scans through the shared §4.4 runtime
/// without ever materializing tags per row.
#[derive(Debug, Clone, PartialEq)]
pub struct Constructed {
    /// The shared template.
    pub template: Arc<Template>,
    /// This row's argument values.
    pub args: Vec<String>,
}

impl Constructed {
    /// Build the intermediate form (no tag copying happens here).
    pub fn new(template: Arc<Template>, args: Vec<String>) -> Result<Constructed> {
        if args.len() < template.slots {
            return Err(EngineError::Invalid(format!(
                "template needs {} argument slots, got {}",
                template.slots,
                args.len()
            )));
        }
        Ok(Constructed { template, args })
    }

    /// Replay as events into any sink (serializer, packer, QuickXScan).
    pub fn replay(&self, sink: &mut dyn EventSink) -> Result<()> {
        let mut scratch = String::new();
        for op in &self.template.ops {
            match op {
                TOp::Start(name) => sink.event(Event::StartElement { name: *name })?,
                TOp::End => sink.event(Event::EndElement)?,
                TOp::Attr { name, parts } => {
                    scratch.clear();
                    fill(parts, &self.args, &mut scratch);
                    sink.event(Event::Attribute {
                        name: *name,
                        value: &scratch,
                        ann: TypeAnn::Untyped,
                    })?;
                }
                TOp::Text { parts } => {
                    scratch.clear();
                    fill(parts, &self.args, &mut scratch);
                    sink.event(Event::Text {
                        value: &scratch,
                        ann: TypeAnn::Untyped,
                    })?;
                }
                TOp::Comment { parts } => {
                    scratch.clear();
                    fill(parts, &self.args, &mut scratch);
                    sink.event(Event::Comment { value: &scratch })?;
                }
            }
        }
        Ok(())
    }

    /// Serialize to XML text.
    pub fn to_xml(&self, dict: &NameDict) -> Result<String> {
        let mut ser = rx_xml::Serializer::new(dict);
        self.replay(&mut ser)?;
        Ok(ser.finish())
    }
}

// ---------------------------------------------------------------------------
// XMLAGG with linked-list quicksort
// ---------------------------------------------------------------------------

/// A row of an XMLAGG group, kept on an intrusive singly-linked list (the
/// paper's "linked list representation of rows in each group").
struct AggRow {
    args: Vec<String>,
    /// Sort key extracted at append time.
    key: String,
    next: Option<Box<AggRow>>,
}

/// `XMLAGG(constructor ORDER BY slot)` over one group: rows share one
/// template; ORDER BY runs as an in-memory quicksort of the linked list.
pub struct XmlAgg {
    template: Arc<Template>,
    /// ORDER BY argument slot (`None` = input order) and descending flag.
    order_by: Option<(usize, bool)>,
    head: Option<Box<AggRow>>,
    len: usize,
}

impl XmlAgg {
    /// Start a group.
    pub fn new(template: Arc<Template>, order_by: Option<(usize, bool)>) -> XmlAgg {
        XmlAgg {
            template,
            order_by,
            head: None,
            len: 0,
        }
    }

    /// Append one row's argument record (O(1), no tag copying).
    pub fn push(&mut self, args: Vec<String>) {
        let key = match self.order_by {
            Some((slot, _)) => args.get(slot).cloned().unwrap_or_default(),
            None => String::new(),
        };
        let node = Box::new(AggRow {
            args,
            key,
            next: self.head.take(),
        });
        self.head = Some(node);
        self.len += 1;
    }

    /// Number of rows in the group.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the group is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Finish the group: sort (if ordered), returning the per-row
    /// intermediate results in final order.
    pub fn finish(mut self) -> Vec<Constructed> {
        // Rows were pushed onto the head: reverse to restore input order.
        let mut list = reverse(self.head.take());
        if let Some((_, desc)) = self.order_by {
            list = quicksort(list, desc);
        }
        let mut out = Vec::with_capacity(self.len);
        let mut cur = list;
        while let Some(mut n) = cur {
            cur = n.next.take();
            out.push(Constructed {
                template: Arc::clone(&self.template),
                args: n.args,
            });
        }
        out
    }

    /// Finish and serialize the whole aggregate to one XML string.
    pub fn finish_to_xml(self, dict: &NameDict) -> Result<String> {
        let items = self.finish();
        let mut ser = rx_xml::Serializer::new(dict);
        for item in &items {
            item.replay(&mut ser)?;
        }
        Ok(ser.finish())
    }
}

fn reverse(mut list: Option<Box<AggRow>>) -> Option<Box<AggRow>> {
    let mut prev = None;
    while let Some(mut n) = list {
        list = n.next.take();
        n.next = prev;
        prev = Some(n);
    }
    prev
}

/// In-memory quicksort on the linked list (§4.1). Three-way partition around
/// the head pivot (equal keys form the middle run, so duplicate-heavy XMLAGG
/// groups cost one partition per distinct key), O(1) splices via (head, tail)
/// pairs, and recursion only on the smaller side (the larger side continues
/// iteratively), bounding stack depth at O(log n). Rows never reallocate —
/// only `next` pointers move.
fn quicksort(list: Option<Box<AggRow>>, desc: bool) -> Option<Box<AggRow>> {
    type Chain = Option<(Box<AggRow>, *mut AggRow)>;

    fn concat(a: Chain, b: Chain) -> Chain {
        match (a, b) {
            (None, x) | (x, None) => x,
            (Some((ah, at)), Some((bh, bt))) => {
                unsafe {
                    (*at).next = Some(bh);
                }
                Some((ah, bt))
            }
        }
    }

    fn sort(mut list: Option<Box<AggRow>>, desc: bool) -> Chain {
        let mut prefix: Chain = None;
        let mut suffix: Chain = None;
        loop {
            let Some(mut pivot) = list else {
                return concat(prefix, suffix);
            };
            let mut rest = pivot.next.take();
            let mut less: Option<Box<AggRow>> = None;
            let mut greater: Option<Box<AggRow>> = None;
            let (mut n_less, mut n_greater) = (0usize, 0usize);
            let mut eq_tail: *mut AggRow = pivot.as_mut();
            while let Some(mut n) = rest {
                rest = n.next.take();
                let ord = if desc {
                    pivot.key.cmp(&n.key)
                } else {
                    n.key.cmp(&pivot.key)
                };
                match ord {
                    std::cmp::Ordering::Less => {
                        n.next = less;
                        less = Some(n);
                        n_less += 1;
                    }
                    std::cmp::Ordering::Equal => unsafe {
                        let raw = Box::into_raw(n);
                        (*eq_tail).next = Some(Box::from_raw(raw));
                        eq_tail = raw;
                    },
                    std::cmp::Ordering::Greater => {
                        n.next = greater;
                        greater = Some(n);
                        n_greater += 1;
                    }
                }
            }
            let run: Chain = Some((pivot, eq_tail));
            // Recurse into the smaller side; keep iterating on the larger.
            if n_less <= n_greater {
                let sorted_less = sort(less, desc);
                prefix = concat(prefix, concat(sorted_less, run));
                list = greater;
            } else {
                let sorted_greater = sort(greater, desc);
                suffix = concat(concat(run, sorted_greater), suffix);
                list = less;
            }
        }
    }

    sort(list, desc).map(|(head, _)| head)
}

// ---------------------------------------------------------------------------
// Baselines for E7
// ---------------------------------------------------------------------------

/// The standard nested evaluation the paper rejects: "evaluate the arguments
/// first, then evaluate the function … it will either involve small data
/// items linked by pointers or need multiple copies of the same data items."
/// This baseline re-materializes every tag string for every row.
pub fn naive_construct_string(ctor: &Ctor, args: &[String]) -> String {
    fn value(v: &ValueExpr, args: &[String]) -> String {
        match v {
            ValueExpr::Column(i) => args.get(*i).cloned().unwrap_or_default(),
            ValueExpr::Literal(s) => s.clone(),
            ValueExpr::Concat(vs) => {
                // Per-row intermediate copies — the cost being measured.
                let parts: Vec<String> = vs.iter().map(|v| value(v, args)).collect();
                parts.concat()
            }
        }
    }
    fn esc(s: &str) -> String {
        let mut out = String::new();
        rx_xml::serialize::escape_text(s, &mut out);
        out
    }
    match ctor {
        Ctor::Element {
            name,
            attrs,
            content,
        } => {
            let mut s = format!("<{name}");
            for a in attrs {
                let mut v = String::new();
                rx_xml::serialize::escape_attr(&value(&a.value, args), &mut v);
                s.push_str(&format!(" {}=\"{v}\"", a.name));
            }
            if content.is_empty() {
                s.push_str("/>");
            } else {
                s.push('>');
                let inner: Vec<String> = content
                    .iter()
                    .map(|c| naive_construct_string(c, args))
                    .collect();
                s.push_str(&inner.concat());
                s.push_str(&format!("</{name}>"));
            }
            s
        }
        Ctor::Forest(items) => items
            .iter()
            .map(|(n, v)| {
                let body = esc(&value(v, args));
                if body.is_empty() {
                    format!("<{n}/>")
                } else {
                    format!("<{n}>{body}</{n}>")
                }
            })
            .collect::<Vec<String>>()
            .concat(),
        Ctor::Text(v) => esc(&value(v, args)),
        Ctor::Comment(v) => format!("<!--{}-->", value(v, args)),
    }
}

/// External-sort baseline for XMLAGG ORDER BY: the "traditional temporary
/// work files" path (§4.4) — each sorted run is written to a real heap table
/// on the buffer pool (the relational temp-file mechanism), then a k-way
/// merge re-reads rows record-by-record through the storage layer. The
/// overhead relative to the linked-list quicksort is exactly what §4.1 calls
/// "significant overhead": per-row materialization into and out of work
/// files.
pub fn external_sort_rows(
    mut rows: Vec<Vec<String>>,
    key_slot: usize,
    run_size: usize,
) -> Vec<Vec<String>> {
    use rx_storage::{BufferPool, FileBackend, HeapTable, Rid, TableSpace};

    fn encode(row: &[String]) -> Vec<u8> {
        let mut buf = Vec::with_capacity(16);
        buf.extend_from_slice(&(row.len() as u32).to_le_bytes());
        for v in row {
            buf.extend_from_slice(&(v.len() as u32).to_le_bytes());
            buf.extend_from_slice(v.as_bytes());
        }
        buf
    }
    fn decode(buf: &[u8]) -> Vec<String> {
        let mut pos = 0usize;
        let n = u32::from_le_bytes(buf[pos..pos + 4].try_into().unwrap()) as usize;
        pos += 4;
        let mut row = Vec::with_capacity(n);
        for _ in 0..n {
            let len = u32::from_le_bytes(buf[pos..pos + 4].try_into().unwrap()) as usize;
            pos += 4;
            row.push(String::from_utf8_lossy(&buf[pos..pos + len]).into_owned());
            pos += len;
        }
        row
    }

    // Work files are DISK-resident temporaries: file-backed spaces behind a
    // deliberately small buffer pool, so runs genuinely spill and the merge
    // re-reads pages from disk — the 2005 temp-work-file reality.
    let pool = BufferPool::new(128);
    let tmp = std::env::temp_dir().join(format!(
        "rx-workfiles-{}-{:p}",
        std::process::id(),
        &rows as *const _
    ));
    std::fs::create_dir_all(&tmp).expect("work-file dir");
    let total = rows.len();
    // Run formation: sort each bounded run, spill it to a work-file heap.
    let mut runs: Vec<(std::sync::Arc<HeapTable>, Vec<Rid>)> = Vec::new();
    let mut space_id = 1u32;
    while !rows.is_empty() {
        let take = rows.len().min(run_size);
        let mut run: Vec<Vec<String>> = rows.drain(..take).collect();
        run.sort_by(|a, b| a.get(key_slot).cmp(&b.get(key_slot)));
        let backend =
            FileBackend::open(&tmp.join(format!("run-{space_id}.dat"))).expect("work file");
        let space = TableSpace::create(pool.clone(), space_id, std::sync::Arc::new(backend))
            .expect("work-file space");
        space_id += 1;
        let heap = HeapTable::create(space).expect("work-file heap");
        let mut rids = Vec::with_capacity(run.len());
        for row in &run {
            rids.push(heap.insert(&encode(row)).expect("work-file write"));
        }
        runs.push((heap, rids));
    }
    // K-way merge, re-reading each row from its work file.
    struct Cursor {
        next: usize,
        current: Option<Vec<String>>,
    }
    let mut cursors: Vec<Cursor> = runs
        .iter()
        .map(|(heap, rids)| {
            let current = rids
                .first()
                .map(|rid| decode(&heap.fetch(*rid).expect("work-file read")));
            Cursor { next: 1, current }
        })
        .collect();
    let mut out = Vec::with_capacity(total);
    for _ in 0..total {
        let mut best: Option<usize> = None;
        for (r, c) in cursors.iter().enumerate() {
            let Some(row) = &c.current else { continue };
            best = match best {
                None => Some(r),
                Some(b) => {
                    if row.get(key_slot) < cursors[b].current.as_ref().unwrap().get(key_slot) {
                        Some(r)
                    } else {
                        Some(b)
                    }
                }
            };
        }
        let b = best.expect("total counted");
        let row = cursors[b].current.take().expect("best has a row");
        let (heap, rids) = &runs[b];
        if cursors[b].next < rids.len() {
            cursors[b].current = Some(decode(&heap.fetch(rids[cursors[b].next]).expect("read")));
            cursors[b].next += 1;
        }
        out.push(row);
    }
    drop(runs);
    let _ = std::fs::remove_dir_all(&tmp);
    out
}

/// The paper's running example (Fig. 5): builds
/// `XMLELEMENT(NAME "Emp", XMLATTRIBUTES($0 AS "id", $1||' '||$2 AS "name"),
///  XMLFOREST($3 AS "HIRE", $4 AS "department"))`.
pub fn fig5_emp_ctor() -> Ctor {
    Ctor::Element {
        name: "Emp".into(),
        attrs: vec![
            CtorAttr {
                name: "id".into(),
                value: ValueExpr::Column(0),
            },
            CtorAttr {
                name: "name".into(),
                value: ValueExpr::Concat(vec![
                    ValueExpr::Column(1),
                    ValueExpr::Literal(" ".into()),
                    ValueExpr::Column(2),
                ]),
            },
        ],
        content: vec![Ctor::Forest(vec![
            ("HIRE".into(), ValueExpr::Column(3)),
            ("department".into(), ValueExpr::Column(4)),
        ])],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn emp_args() -> Vec<String> {
        vec![
            "1234".into(),
            "John".into(),
            "Doe".into(),
            "2000-10-24".into(),
            "Accting".into(),
        ]
    }

    #[test]
    fn fig5_template_shape_and_output() {
        let dict = NameDict::new();
        let ctor = fig5_emp_ctor();
        let tpl = Template::compile(&ctor, &dict).unwrap();
        // Flattened: Start(Emp), Attr(id), Attr(name), Start(HIRE), Text,
        // End, Start(department), Text, End, End = 10 ops, 5 slots.
        assert_eq!(tpl.ops.len(), 10);
        assert_eq!(tpl.slots, 5);
        let c = Constructed::new(Arc::clone(&tpl), emp_args()).unwrap();
        assert_eq!(
            c.to_xml(&dict).unwrap(),
            r#"<Emp id="1234" name="John Doe"><HIRE>2000-10-24</HIRE><department>Accting</department></Emp>"#
        );
    }

    #[test]
    fn template_matches_naive_output() {
        let dict = NameDict::new();
        let ctor = fig5_emp_ctor();
        let tpl = Template::compile(&ctor, &dict).unwrap();
        for i in 0..50 {
            let args = vec![
                format!("{i}"),
                format!("First{i}"),
                format!("Last{i}"),
                "2005-06-16".to_string(),
                format!("Dept{}", i % 5),
            ];
            let fast = Constructed::new(Arc::clone(&tpl), args.clone())
                .unwrap()
                .to_xml(&dict)
                .unwrap();
            let slow = naive_construct_string(&ctor, &args);
            assert_eq!(fast, slow, "row {i}");
        }
    }

    #[test]
    fn escaping_through_template() {
        let dict = NameDict::new();
        let ctor = Ctor::Element {
            name: "v".into(),
            attrs: vec![CtorAttr {
                name: "a".into(),
                value: ValueExpr::Column(0),
            }],
            content: vec![Ctor::Text(ValueExpr::Column(1))],
        };
        let tpl = Template::compile(&ctor, &dict).unwrap();
        let c = Constructed::new(tpl, vec![r#"x<"y"&z"#.into(), "a<b&c".into()]).unwrap();
        assert_eq!(
            c.to_xml(&dict).unwrap(),
            r#"<v a="x&lt;&quot;y&quot;&amp;z">a&lt;b&amp;c</v>"#
        );
    }

    #[test]
    fn missing_args_rejected() {
        let dict = NameDict::new();
        let tpl = Template::compile(&fig5_emp_ctor(), &dict).unwrap();
        assert!(Constructed::new(tpl, vec!["only-one".into()]).is_err());
    }

    #[test]
    fn xmlagg_preserves_input_order_without_order_by() {
        let dict = NameDict::new();
        let ctor = Ctor::Forest(vec![("v".into(), ValueExpr::Column(0))]);
        let tpl = Template::compile(&ctor, &dict).unwrap();
        let mut agg = XmlAgg::new(tpl, None);
        for v in ["c", "a", "b"] {
            agg.push(vec![v.to_string()]);
        }
        assert_eq!(agg.len(), 3);
        let xml = agg.finish_to_xml(&dict).unwrap();
        assert_eq!(xml, "<v>c</v><v>a</v><v>b</v>");
    }

    #[test]
    fn xmlagg_order_by_quicksort() {
        let dict = NameDict::new();
        let ctor = Ctor::Forest(vec![("v".into(), ValueExpr::Column(0))]);
        let tpl = Template::compile(&ctor, &dict).unwrap();
        let mut agg = XmlAgg::new(Arc::clone(&tpl), Some((0, false)));
        for v in ["pear", "apple", "mango", "fig", "apple"] {
            agg.push(vec![v.to_string()]);
        }
        let xml = agg.finish_to_xml(&dict).unwrap();
        assert_eq!(
            xml,
            "<v>apple</v><v>apple</v><v>fig</v><v>mango</v><v>pear</v>"
        );
        // Descending.
        let mut agg = XmlAgg::new(tpl, Some((0, true)));
        for v in ["b", "c", "a"] {
            agg.push(vec![v.to_string()]);
        }
        assert_eq!(
            agg.finish_to_xml(&dict).unwrap(),
            "<v>c</v><v>b</v><v>a</v>"
        );
    }

    #[test]
    fn quicksort_handles_large_groups() {
        let dict = NameDict::new();
        let ctor = Ctor::Forest(vec![("n".into(), ValueExpr::Column(0))]);
        let tpl = Template::compile(&ctor, &dict).unwrap();
        let mut agg = XmlAgg::new(tpl, Some((0, false)));
        // Zero-padded numbers sort lexicographically = numerically.
        let n = 2000;
        for i in 0..n {
            agg.push(vec![format!("{:05}", (i * 7919) % n)]);
        }
        let items = agg.finish();
        assert_eq!(items.len(), n);
        for w in items.windows(2) {
            assert!(w[0].args[0] <= w[1].args[0]);
        }
    }

    #[test]
    fn external_sort_agrees_with_quicksort() {
        let rows: Vec<Vec<String>> = (0..500)
            .map(|i| vec![format!("{:04}", (i * 31) % 500), format!("payload{i}")])
            .collect();
        let ext = external_sort_rows(rows.clone(), 0, 64);
        let mut quick = rows;
        quick.sort_by(|a, b| a[0].cmp(&b[0]));
        assert_eq!(ext, quick);
    }

    #[test]
    fn constructed_feeds_quickxscan() {
        // The intermediate form replays into the shared runtime: evaluate an
        // XPath over constructed (never-serialized) data.
        let dict = NameDict::new();
        let tpl = Template::compile(&fig5_emp_ctor(), &dict).unwrap();
        let c = Constructed::new(tpl, emp_args()).unwrap();
        let path = rx_xpath::XPathParser::new()
            .parse("/Emp/department")
            .unwrap();
        let tree = rx_xpath::QueryTree::compile(&path).unwrap();
        let mut scan = rx_xpath::QuickXScan::new(&tree, &dict);
        scan.event(Event::StartDocument).unwrap();
        c.replay(&mut scan).unwrap();
        scan.event(Event::EndDocument).unwrap();
        let items = scan.finish().unwrap();
        assert_eq!(items.len(), 1);
        assert_eq!(items[0].value, "Accting");
    }
}
