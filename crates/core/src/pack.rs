//! Tree packing: the native XML storage format (§3.1, Fig. 3).
//!
//! "Within each packed record, structure nesting is used to represent the
//! parent-child relationship between nodes … Each non-leaf node contains the
//! number of children, followed by the child nodes, recursively. Subtree
//! length is also contained in non-leaf nodes to support efficient tree
//! traversal by using the first-child and next-sibling operations. Assuming
//! the tree is too big for one record, we pack a subtree or a sequence of
//! subtrees into a separate record, in a bottom-up fashion. A packed subtree
//! is represented using a proxy node in its containing record. No explicit
//! physical link is used between records … Instead, logical node IDs are used
//! to link between records through a NodeID index."
//!
//! Highlights mirrored from the paper:
//!
//! * **bottom-up streaming construction** (§3.2): records are generated
//!   directly from the token stream, no intermediate tree;
//! * **size-based grouping**: a subtree or consecutive sibling subtrees are
//!   spilled to their own record when the enclosing element exceeds the
//!   target record size (the simple alternative to Natix's split matrix the
//!   paper argues for); adjacent proxies merge into *range proxies* so huge
//!   fan-out never bloats the parent;
//! * **self-contained records**: every record header carries the context
//!   node's absolute ID, the name-ID path from the root, and the in-scope
//!   namespaces — so a record fetched straight from an XPath value index can
//!   be interpreted without touching its ancestors;
//! * **interval index entries**: per record, one NodeID-index entry per
//!   contiguous run of node IDs, keyed by the run's *upper endpoint* (§3.4) —
//!   reproducing Fig. 3's `(02,rid1) (020206,rid2) (020602,rid1)` exactly.

use crate::error::{EngineError, Result};
use rx_storage::codec::{Dec, Enc};
use rx_xml::event::{Event, EventSink};
use rx_xml::name::{QNameId, StrId};
use rx_xml::nodeid::{NodeId, RelId};
use rx_xml::value::TypeAnn;

/// Node kind tags in the packed format (the XQuery data model's kinds;
/// namespace bindings are stored in element heads, document nodes are
/// implicit).
pub mod kind {
    /// Element node.
    pub const ELEMENT: u8 = 1;
    /// Attribute node.
    pub const ATTRIBUTE: u8 = 2;
    /// Text node.
    pub const TEXT: u8 = 3;
    /// Comment node.
    pub const COMMENT: u8 = 4;
    /// Processing-instruction node.
    pub const PI: u8 = 5;
    /// Range proxy: a consecutive run of sibling subtrees packed into
    /// other records, located through the NodeID index.
    pub const PROXY: u8 = 6;
}

/// Default target record size (bytes) for size-based grouping. Must leave
/// room within [`rx_storage::MAX_RECORD_SIZE`].
pub const DEFAULT_TARGET_RECORD: usize = 3500;

/// A finished packed record plus the metadata its indexes need.
#[derive(Debug, Clone, PartialEq)]
pub struct PackedRecord {
    /// Encoded record image (header + node data) — the XMLData column value.
    pub bytes: Vec<u8>,
    /// Smallest node ID stored in the record (the minNodeId column).
    pub min_id: NodeId,
    /// Upper endpoints of the contiguous node-ID runs inside this record —
    /// one NodeID-index entry each (§3.4).
    pub interval_uppers: Vec<NodeId>,
}

/// Where finished records go during packing.
pub trait RecordSink {
    /// Receive one finished record.
    fn record(&mut self, rec: PackedRecord) -> Result<()>;
}

impl RecordSink for Vec<PackedRecord> {
    fn record(&mut self, rec: PackedRecord) -> Result<()> {
        self.push(rec);
        Ok(())
    }
}

impl<F: FnMut(PackedRecord) -> Result<()>> RecordSink for F {
    fn record(&mut self, rec: PackedRecord) -> Result<()> {
        self(rec)
    }
}

/// Observer of node-ID assignment during packing. The engine hooks XPath
/// value-index key generation here (§3.3: "index keys … are generated per
/// record, which fits existing infrastructure very well") by driving a
/// QuickXScan with `set_current_node`.
pub trait NodeObserver {
    /// Called once per node, before the corresponding event logic runs.
    fn node(&mut self, id: &NodeId, ev: &Event<'_>) -> Result<()>;
}

/// No-op observer.
pub struct NoObserver;

impl NodeObserver for NoObserver {
    fn node(&mut self, _id: &NodeId, _ev: &Event<'_>) -> Result<()> {
        Ok(())
    }
}

/// Fan one node stream out to two observers (e.g. value-index and full-text
/// key generation running side by side over a single insertion pass).
pub struct TeeObserver<'a, A: NodeObserver, B: NodeObserver> {
    /// First observer.
    pub a: &'a mut A,
    /// Second observer.
    pub b: &'a mut B,
}

impl<A: NodeObserver, B: NodeObserver> NodeObserver for TeeObserver<'_, A, B> {
    fn node(&mut self, id: &NodeId, ev: &Event<'_>) -> Result<()> {
        self.a.node(id, ev)?;
        self.b.node(id, ev)
    }
}

// ---------------------------------------------------------------------------
// Encoding helpers
// ---------------------------------------------------------------------------

fn enc_rel(e: &mut Enc, rel: &RelId) {
    e.bytes(rel.as_bytes());
}

/// A contiguous run of node IDs present in a segment.
#[derive(Debug, Clone, PartialEq)]
struct Run {
    first: NodeId,
    last: NodeId,
}

/// An encoded child entry of an open element: either an inline subtree or a
/// range proxy for subtrees spilled to other records.
struct Segment {
    bytes: Vec<u8>,
    /// Relative IDs of the first/last sibling subtree covered.
    first_rel: RelId,
    last_rel: RelId,
    /// Number of sibling subtrees covered.
    sibling_count: u64,
    /// Node-ID runs physically present in `bytes` (absolute IDs).
    runs: Vec<Run>,
    is_proxy: bool,
    /// True when the segment's ID coverage ends with packed-out IDs (its
    /// last entry, recursively, is a proxy) — the next sibling's IDs are then
    /// NOT contiguous with this segment's last run.
    ends_with_gap: bool,
}

impl Segment {
    fn proxy(first_rel: RelId, last_rel: RelId, sibling_count: u64) -> Segment {
        let mut e = Enc::with_capacity(first_rel.as_bytes().len() + last_rel.as_bytes().len() + 8);
        e.u8(kind::PROXY);
        enc_rel(&mut e, &first_rel);
        enc_rel(&mut e, &last_rel);
        e.varint(sibling_count);
        Segment {
            bytes: e.into_bytes(),
            first_rel,
            last_rel,
            sibling_count,
            runs: Vec::new(),
            is_proxy: true,
            ends_with_gap: true,
        }
    }
}

/// Merge a segment's runs onto the tail of `runs`, coalescing when the
/// previous coverage is physically adjacent (no packed-out IDs in between —
/// i.e. the previous segment neither was a proxy nor ended with one).
fn append_runs(runs: &mut Vec<Run>, seg_runs: &[Run], prev_gap: bool) {
    let mut iter = seg_runs.iter();
    if let Some(first) = iter.next() {
        match runs.last_mut() {
            Some(last) if !prev_gap => {
                last.last = first.last.clone();
            }
            _ => runs.push(first.clone()),
        }
        for r in iter {
            runs.push(r.clone());
        }
    }
}

struct OpenElem {
    name: QNameId,
    rel: RelId,
    abs: NodeId,
    nsdecls: Vec<(StrId, StrId)>,
    next_child: Option<RelId>,
    segments: Vec<Segment>,
    inline_bytes: usize,
}

impl OpenElem {
    fn alloc_child(&mut self) -> RelId {
        let rel = match &self.next_child {
            None => RelId::first(),
            Some(prev) => prev.next_sibling(),
        };
        self.next_child = Some(rel.clone());
        rel
    }
}

/// Statistics gathered while packing one document.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct PackStats {
    /// Nodes assigned IDs (elements + attributes + texts + comments + PIs).
    pub nodes: u64,
    /// Records emitted.
    pub records: u64,
    /// Total record bytes emitted.
    pub bytes: u64,
    /// NodeID-index entries produced.
    pub index_entries: u64,
}

/// The streaming bottom-up tree packer. Feed it virtual SAX events; finished
/// records flow out through the [`RecordSink`].
pub struct Packer<'s, 'o> {
    target: usize,
    sink: &'s mut dyn RecordSink,
    observer: &'o mut dyn NodeObserver,
    /// Pseudo element for the document node (children of the document).
    doc: OpenElem,
    stack: Vec<OpenElem>,
    /// Statistics.
    pub stats: PackStats,
    done: bool,
}

impl<'s, 'o> Packer<'s, 'o> {
    /// Create a packer with the default target record size.
    pub fn new(sink: &'s mut dyn RecordSink, observer: &'o mut dyn NodeObserver) -> Self {
        Self::with_target(DEFAULT_TARGET_RECORD, sink, observer)
    }

    /// Create a packer with an explicit target record size (the knob of the
    /// E1/E2 packing-factor sweeps).
    pub fn with_target(
        target: usize,
        sink: &'s mut dyn RecordSink,
        observer: &'o mut dyn NodeObserver,
    ) -> Self {
        Packer {
            target: target.min(rx_storage::MAX_RECORD_SIZE - 64),
            sink,
            observer,
            doc: OpenElem {
                name: 0,
                rel: RelId::first(),
                abs: NodeId::root(),
                nsdecls: Vec::new(),
                next_child: None,
                segments: Vec::new(),
                inline_bytes: 0,
            },
            stack: Vec::new(),
            stats: PackStats::default(),
            done: false,
        }
    }

    fn top(&mut self) -> &mut OpenElem {
        self.stack.last_mut().unwrap_or(&mut self.doc)
    }

    fn top_abs(&self) -> &NodeId {
        self.stack.last().map_or(&self.doc.abs, |e| &e.abs)
    }

    /// Path of element name IDs from the root down to (and including) `abs`'s
    /// element — i.e. the names of all open elements.
    fn path_names(&self, upto: usize) -> Vec<QNameId> {
        self.stack[..upto].iter().map(|e| e.name).collect()
    }

    /// All in-scope namespace declarations for the element at stack depth
    /// `upto` (outermost first; later re-declarations win at decode time).
    fn inscope_ns(&self, upto: usize) -> Vec<(StrId, StrId)> {
        let mut out = Vec::new();
        for e in &self.stack[..upto] {
            out.extend_from_slice(&e.nsdecls);
        }
        out
    }

    /// Add a leaf node segment to the current parent.
    fn push_leaf(&mut self, encode: impl FnOnce(&mut Enc, &RelId)) -> Result<(RelId, NodeId)> {
        let parent_abs = self.top_abs().clone();
        let parent = self.top();
        let rel = parent.alloc_child();
        let abs = parent_abs.child(&rel);
        let mut e = Enc::with_capacity(32);
        encode(&mut e, &rel);
        let bytes = e.into_bytes();
        let len = bytes.len();
        parent.segments.push(Segment {
            bytes,
            first_rel: rel.clone(),
            last_rel: rel.clone(),
            sibling_count: 1,
            runs: vec![Run {
                first: abs.clone(),
                last: abs.clone(),
            }],
            is_proxy: false,
            ends_with_gap: false,
        });
        parent.inline_bytes += len;
        self.stats.nodes += 1;
        Ok((rel, abs))
    }

    /// Spill child segments of `elem` into records (context = `elem`) and
    /// replace them with merged range proxies.
    fn spill_children(&mut self, elem: &mut OpenElem, stack_depth: usize) -> Result<()> {
        // Header for all spilled records: context = elem.
        let path: Vec<QNameId> = {
            let mut p = self.path_names(stack_depth);
            p.push(elem.name);
            p
        };
        let ns = {
            let mut n = self.inscope_ns(stack_depth);
            n.extend_from_slice(&elem.nsdecls);
            n
        };
        let header = encode_header(&elem.abs, &path, &ns);

        let segments = std::mem::take(&mut elem.segments);
        let mut new_segments: Vec<Segment> = Vec::new();
        let mut group: Vec<Segment> = Vec::new();
        let mut group_bytes = 0usize;

        let flush_group = |group: &mut Vec<Segment>,
                           group_bytes: &mut usize,
                           new_segments: &mut Vec<Segment>,
                           sink: &mut dyn RecordSink,
                           stats: &mut PackStats,
                           header: &[u8],
                           elem_abs: &NodeId|
         -> Result<()> {
            if group.is_empty() {
                return Ok(());
            }
            // Emit one record holding this sequence of sibling subtrees.
            let mut body = Enc::with_capacity(header.len() + *group_bytes + 8);
            body.raw(header);
            body.varint(group.len() as u64);
            let mut runs: Vec<Run> = Vec::new();
            let mut prev_gap = true; // first segment starts a new run
            for seg in group.iter() {
                body.raw(&seg.bytes);
                append_runs(&mut runs, &seg.runs, prev_gap);
                prev_gap = seg.is_proxy || seg.ends_with_gap;
            }
            let min_id = runs
                .first()
                .map(|r| r.first.clone())
                .unwrap_or_else(|| elem_abs.child(&group[0].first_rel));
            let uppers: Vec<NodeId> = runs.iter().map(|r| r.last.clone()).collect();
            let bytes = body.into_bytes();
            stats.records += 1;
            stats.bytes += bytes.len() as u64;
            stats.index_entries += uppers.len() as u64;
            sink.record(PackedRecord {
                bytes,
                min_id,
                interval_uppers: uppers,
            })?;
            // Replace the group with one range proxy (merging with a
            // preceding proxy when adjacent).
            let first_rel = group.first().unwrap().first_rel.clone();
            let last_rel = group.last().unwrap().last_rel.clone();
            let count: u64 = group.iter().map(|s| s.sibling_count).sum();
            match new_segments.last_mut() {
                Some(prev) if prev.is_proxy => {
                    let merged = Segment::proxy(
                        prev.first_rel.clone(),
                        last_rel,
                        prev.sibling_count + count,
                    );
                    *prev = merged;
                }
                _ => new_segments.push(Segment::proxy(first_rel, last_rel, count)),
            }
            group.clear();
            *group_bytes = 0;
            Ok(())
        };

        for seg in segments {
            if seg.bytes.len() + header.len() + 16 > self.target && !seg.is_proxy {
                // A single subtree larger than the target: it must go to its
                // own record (its own children were already spilled when it
                // closed, so this only happens for wide heads / long values).
                flush_group(
                    &mut group,
                    &mut group_bytes,
                    &mut new_segments,
                    &mut *self.sink,
                    &mut self.stats,
                    &header,
                    &elem.abs,
                )?;
                if seg.bytes.len() + header.len() + 16 > rx_storage::MAX_RECORD_SIZE {
                    return Err(EngineError::Record(format!(
                        "a single node of {} bytes exceeds the maximum record size",
                        seg.bytes.len()
                    )));
                }
                group_bytes = seg.bytes.len();
                group.push(seg);
                flush_group(
                    &mut group,
                    &mut group_bytes,
                    &mut new_segments,
                    &mut *self.sink,
                    &mut self.stats,
                    &header,
                    &elem.abs,
                )?;
                continue;
            }
            if group_bytes + seg.bytes.len() + header.len() + 16 > self.target {
                flush_group(
                    &mut group,
                    &mut group_bytes,
                    &mut new_segments,
                    &mut *self.sink,
                    &mut self.stats,
                    &header,
                    &elem.abs,
                )?;
            }
            group_bytes += seg.bytes.len();
            group.push(seg);
        }
        // Keep the final partial group inline when it still fits next to the
        // element head and the accumulated proxies — this is what yields the
        // exact Fig. 3 layout (trailing siblings Node6/Node7/Node8 stay in
        // the parent record while Node2's subtree moves out).
        let proxies_bytes: usize = new_segments.iter().map(|s| s.bytes.len()).sum();
        if !group.is_empty() && proxies_bytes + group_bytes + 64 > self.target {
            flush_group(
                &mut group,
                &mut group_bytes,
                &mut new_segments,
                &mut *self.sink,
                &mut self.stats,
                &header,
                &elem.abs,
            )?;
        }
        new_segments.extend(group);
        elem.inline_bytes = new_segments.iter().map(|s| s.bytes.len()).sum();
        elem.segments = new_segments;
        Ok(())
    }

    /// Encode a closed element into a single segment for its parent.
    fn seal_element(elem: OpenElem) -> Segment {
        let mut e = Enc::with_capacity(elem.inline_bytes + 32);
        e.u8(kind::ELEMENT);
        enc_rel(&mut e, &elem.rel);
        e.varint(u64::from(elem.name));
        e.varint(elem.nsdecls.len() as u64);
        for (p, u) in &elem.nsdecls {
            e.varint(u64::from(*p));
            e.varint(u64::from(*u));
        }
        e.varint(elem.segments.len() as u64);
        let content_len: usize = elem.segments.iter().map(|s| s.bytes.len()).sum();
        e.varint(content_len as u64);
        let mut runs = vec![Run {
            first: elem.abs.clone(),
            last: elem.abs.clone(),
        }];
        let mut prev_gap = false; // element head is adjacent to its first child
        for seg in &elem.segments {
            e.raw(&seg.bytes);
            append_runs(&mut runs, &seg.runs, prev_gap);
            prev_gap = seg.is_proxy || seg.ends_with_gap;
        }
        Segment {
            bytes: e.into_bytes(),
            first_rel: elem.rel.clone(),
            last_rel: elem.rel,
            sibling_count: 1,
            runs,
            is_proxy: false,
            ends_with_gap: prev_gap,
        }
    }

    /// Finish after `EndDocument`; returns packing statistics.
    pub fn finish(mut self) -> Result<PackStats> {
        if !self.done {
            return Err(EngineError::Record(
                "packer finished before EndDocument".into(),
            ));
        }
        // Emit the final (root) record: context = document node.
        let doc = std::mem::replace(
            &mut self.doc,
            OpenElem {
                name: 0,
                rel: RelId::first(),
                abs: NodeId::root(),
                nsdecls: Vec::new(),
                next_child: None,
                segments: Vec::new(),
                inline_bytes: 0,
            },
        );
        let header = encode_header(&NodeId::root(), &[], &[]);
        let mut body = Enc::with_capacity(header.len() + doc.inline_bytes + 8);
        body.raw(&header);
        body.varint(doc.segments.len() as u64);
        let mut runs: Vec<Run> = Vec::new();
        let mut prev_gap = true;
        for seg in &doc.segments {
            body.raw(&seg.bytes);
            append_runs(&mut runs, &seg.runs, prev_gap);
            prev_gap = seg.is_proxy || seg.ends_with_gap;
        }
        let min_id = runs
            .first()
            .map(|r| r.first.clone())
            .unwrap_or_else(NodeId::root);
        let uppers: Vec<NodeId> = runs.iter().map(|r| r.last.clone()).collect();
        let bytes = body.into_bytes();
        if bytes.len() > rx_storage::MAX_RECORD_SIZE {
            return Err(EngineError::Record(format!(
                "root record of {} bytes exceeds the maximum record size",
                bytes.len()
            )));
        }
        self.stats.records += 1;
        self.stats.bytes += bytes.len() as u64;
        self.stats.index_entries += uppers.len() as u64;
        self.sink.record(PackedRecord {
            bytes,
            min_id,
            interval_uppers: uppers,
        })?;
        Ok(self.stats)
    }
}

impl EventSink for Packer<'_, '_> {
    fn event(&mut self, ev: Event<'_>) -> rx_xml::Result<()> {
        self.handle(ev)
            .map_err(|e| rx_xml::XmlError::stream(e.to_string()))
    }
}

impl Packer<'_, '_> {
    fn handle(&mut self, ev: Event<'_>) -> Result<()> {
        match ev {
            Event::StartDocument => Ok(()),
            Event::EndDocument => {
                self.done = true;
                Ok(())
            }
            Event::StartElement { name } => {
                let parent_abs = self.top_abs().clone();
                let parent = self.top();
                let rel = parent.alloc_child();
                let abs = parent_abs.child(&rel);
                self.observer.node(&abs, &ev)?;
                self.stats.nodes += 1;
                self.stack.push(OpenElem {
                    name,
                    rel,
                    abs,
                    nsdecls: Vec::new(),
                    next_child: None,
                    segments: Vec::new(),
                    inline_bytes: 0,
                });
                Ok(())
            }
            Event::NamespaceDecl { prefix, uri } => {
                if let Some(top) = self.stack.last_mut() {
                    top.nsdecls.push((prefix, uri));
                }
                Ok(())
            }
            Event::Attribute { name, value, ann } => {
                let (_, abs) = self.push_leaf(|e, rel| {
                    e.u8(kind::ATTRIBUTE);
                    enc_rel(e, rel);
                    e.varint(u64::from(name));
                    e.u8(ann as u8);
                    e.bytes(value.as_bytes());
                })?;
                self.observer.node(&abs, &ev)
            }
            Event::Text { value, ann } => {
                let (_, abs) = self.push_leaf(|e, rel| {
                    e.u8(kind::TEXT);
                    enc_rel(e, rel);
                    e.u8(ann as u8);
                    e.bytes(value.as_bytes());
                })?;
                self.observer.node(&abs, &ev)
            }
            Event::Comment { value } => {
                let (_, abs) = self.push_leaf(|e, rel| {
                    e.u8(kind::COMMENT);
                    enc_rel(e, rel);
                    e.bytes(value.as_bytes());
                })?;
                self.observer.node(&abs, &ev)
            }
            Event::Pi { target, data } => {
                let (_, abs) = self.push_leaf(|e, rel| {
                    e.u8(kind::PI);
                    enc_rel(e, rel);
                    e.varint(u64::from(target));
                    e.bytes(data.as_bytes());
                })?;
                self.observer.node(&abs, &ev)
            }
            Event::EndElement => {
                let mut elem = self.stack.pop().ok_or_else(|| {
                    EngineError::Record("unbalanced end element during packing".into())
                })?;
                let end_abs = elem.abs.clone();
                self.observer.node(&end_abs, &ev)?;
                // Size-based grouping: spill the children when the sealed
                // element would overflow the target.
                let head_estimate = 24 + elem.nsdecls.len() * 8;
                if elem.inline_bytes + head_estimate > self.target {
                    let depth = self.stack.len();
                    self.spill_children(&mut elem, depth)?;
                }
                let seg = Self::seal_element(elem);
                let parent = self.top();
                parent.inline_bytes += seg.bytes.len();
                parent.segments.push(seg);
                Ok(())
            }
        }
    }
}

fn encode_header(ctx_abs: &NodeId, path: &[QNameId], ns: &[(StrId, StrId)]) -> Vec<u8> {
    let mut e = Enc::with_capacity(16 + path.len() * 2 + ns.len() * 4);
    e.bytes(ctx_abs.as_bytes());
    e.varint(path.len() as u64);
    for q in path {
        e.varint(u64::from(*q));
    }
    e.varint(ns.len() as u64);
    for (p, u) in ns {
        e.varint(u64::from(*p));
        e.varint(u64::from(*u));
    }
    e.into_bytes()
}

// ---------------------------------------------------------------------------
// Record reader
// ---------------------------------------------------------------------------

/// The decoded record header: the "context path information" of §3.1.
#[derive(Debug, Clone, PartialEq)]
pub struct RecordHeader {
    /// Absolute node ID of the context node (the parent of the record's
    /// subtrees; empty = document node).
    pub context: NodeId,
    /// Element name IDs from the root down to the context node.
    pub path: Vec<QNameId>,
    /// In-scope namespace declarations at the context node.
    pub namespaces: Vec<(StrId, StrId)>,
    /// Number of top-level subtrees in the record.
    pub subtree_count: u64,
    /// Byte offset where node data begins.
    pub body_offset: usize,
}

/// Parse a record's header.
pub fn read_header(bytes: &[u8]) -> Result<RecordHeader> {
    let mut d = Dec::new(bytes);
    let ctx = d
        .bytes()
        .map_err(|e| EngineError::Record(e.to_string()))?
        .to_vec();
    let context = NodeId::from_bytes_unchecked(ctx);
    let plen = d.varint().map_err(dec_err)? as usize;
    let mut path = Vec::with_capacity(plen);
    for _ in 0..plen {
        path.push(d.varint().map_err(dec_err)? as QNameId);
    }
    let nslen = d.varint().map_err(dec_err)? as usize;
    let mut namespaces = Vec::with_capacity(nslen);
    for _ in 0..nslen {
        let p = d.varint().map_err(dec_err)? as StrId;
        let u = d.varint().map_err(dec_err)? as StrId;
        namespaces.push((p, u));
    }
    let subtree_count = d.varint().map_err(dec_err)?;
    Ok(RecordHeader {
        context,
        path,
        namespaces,
        subtree_count,
        body_offset: d.pos(),
    })
}

fn dec_err(e: rx_storage::StorageError) -> EngineError {
    EngineError::Record(e.to_string())
}

/// A decoded view of one node within a record.
#[derive(Debug, Clone, PartialEq)]
pub enum NodeView<'a> {
    /// An element head; its children occupy `content` (recursively decoded
    /// with [`read_nodes`]).
    Element {
        /// Relative ID.
        rel: RelId,
        /// Name.
        name: QNameId,
        /// Namespace declarations on this element.
        nsdecls: Vec<(StrId, StrId)>,
        /// Number of child entries (inline nodes + proxies).
        entries: u64,
        /// Raw encoded children.
        content: &'a [u8],
    },
    /// An attribute node.
    Attribute {
        /// Relative ID.
        rel: RelId,
        /// Name.
        name: QNameId,
        /// Type annotation.
        ann: TypeAnn,
        /// Value.
        value: &'a str,
    },
    /// A text node.
    Text {
        /// Relative ID.
        rel: RelId,
        /// Type annotation.
        ann: TypeAnn,
        /// Character content.
        value: &'a str,
    },
    /// A comment node.
    Comment {
        /// Relative ID.
        rel: RelId,
        /// Content.
        value: &'a str,
    },
    /// A processing instruction.
    Pi {
        /// Relative ID.
        rel: RelId,
        /// Target name.
        target: QNameId,
        /// Data.
        value: &'a str,
    },
    /// A range proxy for sibling subtrees stored in other records.
    Proxy {
        /// First covered sibling's relative ID.
        first: RelId,
        /// Last covered sibling's relative ID.
        last: RelId,
        /// Number of covered sibling subtrees.
        count: u64,
    },
}

impl NodeView<'_> {
    /// The relative ID of the node (for proxies: of the first covered
    /// sibling).
    pub fn rel(&self) -> &RelId {
        match self {
            NodeView::Element { rel, .. }
            | NodeView::Attribute { rel, .. }
            | NodeView::Text { rel, .. }
            | NodeView::Comment { rel, .. }
            | NodeView::Pi { rel, .. } => rel,
            NodeView::Proxy { first, .. } => first,
        }
    }
}

/// Decode one node starting at `pos`; returns the view and the offset just
/// past the node (for elements: past the whole subtree — the "subtree
/// length" skip of §3.1).
pub fn read_node(bytes: &[u8], pos: usize) -> Result<(NodeView<'_>, usize)> {
    let mut d = Dec::new(&bytes[pos..]);
    let k = d.u8().map_err(dec_err)?;
    let rel_of = |d: &mut Dec<'_>| -> Result<RelId> {
        let b = d.bytes().map_err(dec_err)?;
        RelId::from_bytes(b).map_err(|e| EngineError::Record(e.to_string()))
    };
    let view = match k {
        kind::ELEMENT => {
            let rel = rel_of(&mut d)?;
            let name = d.varint().map_err(dec_err)? as QNameId;
            let nslen = d.varint().map_err(dec_err)? as usize;
            let mut nsdecls = Vec::with_capacity(nslen);
            for _ in 0..nslen {
                let p = d.varint().map_err(dec_err)? as StrId;
                let u = d.varint().map_err(dec_err)? as StrId;
                nsdecls.push((p, u));
            }
            let entries = d.varint().map_err(dec_err)?;
            let content_len = d.varint().map_err(dec_err)? as usize;
            let content_start = pos + d.pos();
            let content = bytes
                .get(content_start..content_start + content_len)
                .ok_or_else(|| EngineError::Record("element content truncated".into()))?;
            return Ok((
                NodeView::Element {
                    rel,
                    name,
                    nsdecls,
                    entries,
                    content,
                },
                content_start + content_len,
            ));
        }
        kind::ATTRIBUTE => {
            let rel = rel_of(&mut d)?;
            let name = d.varint().map_err(dec_err)? as QNameId;
            let ann = TypeAnn::from_u8(d.u8().map_err(dec_err)?)
                .map_err(|e| EngineError::Record(e.to_string()))?;
            let value = str_of(d.bytes().map_err(dec_err)?)?;
            NodeView::Attribute {
                rel,
                name,
                ann,
                value,
            }
        }
        kind::TEXT => {
            let rel = rel_of(&mut d)?;
            let ann = TypeAnn::from_u8(d.u8().map_err(dec_err)?)
                .map_err(|e| EngineError::Record(e.to_string()))?;
            let value = str_of(d.bytes().map_err(dec_err)?)?;
            NodeView::Text { rel, ann, value }
        }
        kind::COMMENT => {
            let rel = rel_of(&mut d)?;
            let value = str_of(d.bytes().map_err(dec_err)?)?;
            NodeView::Comment { rel, value }
        }
        kind::PI => {
            let rel = rel_of(&mut d)?;
            let target = d.varint().map_err(dec_err)? as QNameId;
            let value = str_of(d.bytes().map_err(dec_err)?)?;
            NodeView::Pi { rel, target, value }
        }
        kind::PROXY => {
            let first = rel_of(&mut d)?;
            let last = rel_of(&mut d)?;
            let count = d.varint().map_err(dec_err)?;
            NodeView::Proxy { first, last, count }
        }
        other => {
            return Err(EngineError::Record(format!(
                "unknown node kind byte {other}"
            )))
        }
    };
    Ok((view, pos + d.pos()))
}

fn str_of(b: &[u8]) -> Result<&str> {
    std::str::from_utf8(b).map_err(|_| EngineError::Record("invalid UTF-8 in record".into()))
}

/// Iterate the sibling entries of a node region (a record body or an
/// element's content slice relocated to offset 0).
pub fn read_nodes(region: &[u8]) -> NodeIter<'_> {
    NodeIter { region, pos: 0 }
}

/// Iterator over sibling node entries.
pub struct NodeIter<'a> {
    region: &'a [u8],
    pos: usize,
}

impl<'a> Iterator for NodeIter<'a> {
    type Item = Result<NodeView<'a>>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.pos >= self.region.len() {
            return None;
        }
        match read_node(self.region, self.pos) {
            Ok((view, next)) => {
                self.pos = next;
                Some(Ok(view))
            }
            Err(e) => {
                self.pos = self.region.len();
                Some(Err(e))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rx_xml::name::NameDict;
    use rx_xml::parser::Parser;

    fn pack_doc(input: &str, target: usize) -> (Vec<PackedRecord>, PackStats, NameDict) {
        let dict = NameDict::new();
        let mut records: Vec<PackedRecord> = Vec::new();
        let mut obs = NoObserver;
        let mut packer = Packer::with_target(target, &mut records, &mut obs);
        Parser::new(&dict).parse(input, &mut packer).unwrap();
        let stats = packer.finish().unwrap();
        (records, stats, dict)
    }

    #[test]
    fn small_document_single_record() {
        let (records, stats, _) = pack_doc(r#"<a x="1"><b>hi</b><c/></a>"#, 3500);
        assert_eq!(records.len(), 1);
        assert_eq!(stats.records, 1);
        // Nodes: a, @x, b, "hi", c = 5.
        assert_eq!(stats.nodes, 5);
        let rec = &records[0];
        // One contiguous run → one index entry.
        assert_eq!(rec.interval_uppers.len(), 1);
        // min id is the root element (02).
        assert_eq!(rec.min_id.as_bytes(), &[0x02]);
        let hdr = read_header(&rec.bytes).unwrap();
        assert!(hdr.context.is_root());
        assert_eq!(hdr.subtree_count, 1);
    }

    #[test]
    fn record_structure_roundtrip() {
        let (records, _, dict) = pack_doc(r#"<a x="1"><b>hi</b></a>"#, 3500);
        let rec = &records[0];
        let hdr = read_header(&rec.bytes).unwrap();
        let body = &rec.bytes[hdr.body_offset..];
        let mut it = read_nodes(body);
        let root = it.next().unwrap().unwrap();
        match root {
            NodeView::Element {
                name,
                entries,
                content,
                ..
            } => {
                assert!(dict.matches_local(name, "a"));
                assert_eq!(entries, 2); // @x and b
                let mut kids = read_nodes(content);
                match kids.next().unwrap().unwrap() {
                    NodeView::Attribute { name, value, .. } => {
                        assert!(dict.matches_local(name, "x"));
                        assert_eq!(value, "1");
                    }
                    other => panic!("expected attribute, got {other:?}"),
                }
                match kids.next().unwrap().unwrap() {
                    NodeView::Element { name, content, .. } => {
                        assert!(dict.matches_local(name, "b"));
                        let mut sub = read_nodes(content);
                        match sub.next().unwrap().unwrap() {
                            NodeView::Text { value, .. } => assert_eq!(value, "hi"),
                            other => panic!("expected text, got {other:?}"),
                        }
                    }
                    other => panic!("expected element, got {other:?}"),
                }
                assert!(kids.next().is_none());
            }
            other => panic!("expected element, got {other:?}"),
        }
        assert!(it.next().is_none());
    }

    #[test]
    fn fig3_shape_two_records_three_entries() {
        // Reproduce Figure 3 exactly: root Node1 with children Node2 (a
        // subtree that spills whole), Node6, Node7>Node8 packs into TWO
        // records with THREE NodeID-index entries
        // (02, rid1) (020206, rid2) (020602, rid1).
        let filler = "v".repeat(342);
        let doc = format!(
            "<n1><n2><n3>{filler}</n3><n4>{filler}</n4><n5>{filler}</n5></n2><n6/><n7><n8/></n7></n1>"
        );
        let (records, _, _) = pack_doc(&doc, 1100);
        assert_eq!(records.len(), 2, "expected the Fig. 3 two-record layout");
        let rid2 = &records[0];
        let rid1 = &records[1]; // root record emitted last
                                // rid1 holds two ID runs: up to Node1 (02), and Node6..Node8
                                // (0204..020602) — exactly Fig. 3's (02,rid1) and (020602,rid1).
        assert_eq!(
            rid1.interval_uppers
                .iter()
                .map(|u| u.as_bytes().to_vec())
                .collect::<Vec<_>>(),
            vec![vec![0x02], vec![0x02, 0x06, 0x02]],
        );
        // rid2 holds Node2's whole subtree: one run ending at Node5
        // (02 02 06) — Fig. 3's (020206, rid2). (Node2's children here are
        // elements each containing a text node, so the run's upper endpoint
        // is Node5's text child: 02 02 06 02.)
        assert_eq!(rid2.interval_uppers.len(), 1);
        assert!(rid2.interval_uppers[0]
            .as_bytes()
            .starts_with(&[0x02, 0x02, 0x06]));
        // rid2's context is Node1, carried in its header path.
        let hdr = read_header(&rid2.bytes).unwrap();
        assert_eq!(hdr.context.as_bytes(), &[0x02]);
        assert_eq!(hdr.path.len(), 1);
        // rid2's entries sort strictly between rid1's two runs.
        assert!(rid2.interval_uppers[0] > rid1.interval_uppers[0]);
        assert!(rid2.interval_uppers[0] < rid1.interval_uppers[1]);
    }

    #[test]
    fn proxy_replaces_spilled_children() {
        let filler = "w".repeat(800);
        let doc = format!(
            "<cat>{}</cat>",
            (0..20)
                .map(|i| format!("<p><n>item{i}</n><v>{filler}</v></p>"))
                .collect::<String>()
        );
        let (records, stats, _) = pack_doc(&doc, 2000);
        assert!(records.len() > 5);
        assert_eq!(stats.records as usize, records.len());
        // Root record: cat element with proxies only.
        let root = records.last().unwrap();
        let hdr = read_header(&root.bytes).unwrap();
        let body = &root.bytes[hdr.body_offset..];
        let mut it = read_nodes(body);
        let NodeView::Element { content, .. } = it.next().unwrap().unwrap() else {
            panic!("root record must start with the cat element");
        };
        let mut proxies = 0u64;
        let mut covered = 0u64;
        for n in read_nodes(content) {
            match n.unwrap() {
                NodeView::Proxy { count, .. } => {
                    proxies += 1;
                    covered += count;
                }
                _ => covered += 1, // trailing subtrees may stay inline
            }
        }
        assert!(proxies >= 1);
        assert_eq!(
            covered, 20,
            "proxies + inline subtrees must cover all 20 products"
        );
    }

    #[test]
    fn huge_fanout_merges_proxies() {
        // 2000 small children: the parent would overflow with per-child
        // proxies; range-proxy merging must keep the root record small.
        let doc = format!(
            "<r>{}</r>",
            (0..2000).map(|i| format!("<i>{i}</i>")).collect::<String>()
        );
        let (records, _, _) = pack_doc(&doc, 3000);
        let root = records.last().unwrap();
        assert!(
            root.bytes.len() <= 3100,
            "root record is {} bytes",
            root.bytes.len()
        );
        // Coverage must be complete.
        let hdr = read_header(&root.bytes).unwrap();
        let body = &root.bytes[hdr.body_offset..];
        let NodeView::Element {
            content, entries, ..
        } = read_nodes(body).next().unwrap().unwrap()
        else {
            panic!()
        };
        let mut covered = 0u64;
        for n in read_nodes(content) {
            match n.unwrap() {
                NodeView::Proxy { count, .. } => covered += count,
                _ => covered += 1,
            }
        }
        assert_eq!(covered, 2000);
        assert!(entries < 100, "proxies should merge, got {entries} entries");
    }

    #[test]
    fn interval_uppers_probe_correctly() {
        // For every record and every node id in it, a ceiling probe over all
        // interval uppers must land on that record.
        let filler = "x".repeat(500);
        let doc = format!(
            "<r>{}</r>",
            (0..30)
                .map(|i| format!("<p><a>{i}</a><b>{filler}</b></p>"))
                .collect::<String>()
        );
        let (records, _, _) = pack_doc(&doc, 1500);
        // Build the (upper, record index) index.
        let mut index: Vec<(NodeId, usize)> = Vec::new();
        for (i, r) in records.iter().enumerate() {
            for u in &r.interval_uppers {
                index.push((u.clone(), i));
            }
        }
        index.sort_by(|a, b| a.0.cmp(&b.0));
        // Collect every node id per record by decoding.
        for (i, r) in records.iter().enumerate() {
            let hdr = read_header(&r.bytes).unwrap();
            let mut ids = Vec::new();
            collect_ids(&r.bytes[hdr.body_offset..], &hdr.context, &mut ids);
            for id in ids {
                let hit = index
                    .iter()
                    .find(|(u, _)| u >= &id)
                    .map(|(_, idx)| *idx)
                    .unwrap();
                assert_eq!(hit, i, "node {id} should probe to record {i}");
            }
        }
    }

    fn collect_ids(region: &[u8], ctx: &NodeId, out: &mut Vec<NodeId>) {
        for n in read_nodes(region) {
            match n.unwrap() {
                NodeView::Element { rel, content, .. } => {
                    let abs = ctx.child(&rel);
                    out.push(abs.clone());
                    collect_ids(content, &abs, out);
                }
                NodeView::Proxy { .. } => {}
                other => out.push(ctx.child(other.rel())),
            }
        }
    }

    #[test]
    fn min_id_and_clustering_key() {
        let (records, _, _) = pack_doc("<a><b/><c/></a>", 3500);
        assert_eq!(records[0].min_id.as_bytes(), &[0x02]);
    }

    #[test]
    fn packing_factor_scales_with_target() {
        let doc = format!(
            "<r>{}</r>",
            (0..200)
                .map(|i| format!("<p><a>{i}</a><b>text body {i}</b></p>"))
                .collect::<String>()
        );
        let (small, _, _) = pack_doc(&doc, 256);
        let (large, _, _) = pack_doc(&doc, 3500);
        assert!(
            small.len() > 2 * large.len(),
            "smaller target must yield more records ({} vs {})",
            small.len(),
            large.len()
        );
    }

    #[test]
    fn header_carries_context_path_and_ns() {
        let doc = r#"<a xmlns:p="urn:p"><big>BIGCONTENT</big></a>"#;
        // Force a spill of <big> by a tiny target.
        let doc = doc.replace("BIGCONTENT", &"z".repeat(600));
        let (records, _, dict) = pack_doc(&doc, 300);
        assert!(records.len() >= 2);
        let spilled = &records[0];
        let hdr = read_header(&spilled.bytes).unwrap();
        // The spilled record's context path starts at <a> and carries <a>'s
        // namespace declarations — the record is self-contained (§3.1).
        assert!(!hdr.path.is_empty());
        assert!(dict.matches_local(hdr.path[0], "a"));
        assert_eq!(hdr.namespaces.len(), 1);
        assert_eq!(dict.str(hdr.namespaces[0].1).as_ref(), "urn:p");
    }
}
