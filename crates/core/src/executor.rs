//! Parallel query execution: a shared worker pool that fans document
//! evaluation across threads, and an LRU cache of compiled query plans.
//!
//! The paper's scalability argument is that packed XML records "look like
//! rows" to the relational substrate, so relational-style parallel scan
//! machinery applies to XPath evaluation unchanged: candidate documents are
//! independent, the buffer pool is sharded, and indexes are behind `Arc`s,
//! so a query can partition its candidate DocID list and run one
//! QuickXScan + Traverser per partition concurrently.
//!
//! The executor never blocks one batch's tasks on another batch: partitions
//! are claimed from a shared cursor by the pool's threads *and* by the
//! calling thread, so a query always makes progress even when the pool is
//! saturated by other queries (the caller just degrades toward serial).

use crate::access::AccessPlan;
use parking_lot::{Condvar, Mutex};
use rx_xpath::QueryTree;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

type Job = Box<dyn FnOnce() + Send>;
type Task<T> = Box<dyn FnOnce() -> T + Send>;

/// State shared between the pool's threads and the executor handle.
struct PoolShared {
    queue: Mutex<VecDeque<Job>>,
    available: Condvar,
    shutdown: AtomicBool,
}

/// A batch of claimable tasks: workers (and the caller) take the next
/// unclaimed index until the cursor passes the end, storing each result in
/// its partition slot so merge order is deterministic.
struct Batch<T> {
    tasks: Vec<Mutex<Option<Task<T>>>>,
    next: AtomicUsize,
    results: Mutex<Vec<Option<T>>>,
    remaining: Mutex<usize>,
    done: Condvar,
}

fn drain_batch<T: Send>(b: &Batch<T>) {
    loop {
        let i = b.next.fetch_add(1, Ordering::Relaxed);
        if i >= b.tasks.len() {
            return;
        }
        let task = b.tasks[i].lock().take().expect("task claimed twice");
        let r = task();
        b.results.lock()[i] = Some(r);
        let mut rem = b.remaining.lock();
        *rem -= 1;
        if *rem == 0 {
            b.done.notify_all();
        }
    }
}

/// A shared worker pool for intra-query parallelism. Sized by
/// `DbConfig::query_workers`: the configured parallelism counts the calling
/// thread, so the pool itself holds `workers - 1` threads (none at all for
/// `workers = 1`, which runs every batch inline). Threads are spawned lazily
/// on the first parallel batch and joined when the executor drops.
pub struct QueryExecutor {
    workers: usize,
    shared: Arc<PoolShared>,
    handles: Mutex<Vec<JoinHandle<()>>>,
    parallel_queries: AtomicU64,
}

impl QueryExecutor {
    /// Create an executor with `workers` total lanes (caller included).
    pub fn new(workers: usize) -> QueryExecutor {
        QueryExecutor {
            workers: workers.max(1),
            shared: Arc::new(PoolShared {
                queue: Mutex::new(VecDeque::new()),
                available: Condvar::new(),
                shutdown: AtomicBool::new(false),
            }),
            handles: Mutex::new(Vec::new()),
            parallel_queries: AtomicU64::new(0),
        }
    }

    /// Configured parallelism (total lanes, caller included).
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Queries whose evaluation fanned out across more than one lane.
    pub fn parallel_queries(&self) -> u64 {
        self.parallel_queries.load(Ordering::Relaxed)
    }

    fn ensure_started(&self) {
        let mut handles = self.handles.lock();
        if !handles.is_empty() {
            return;
        }
        for i in 0..self.workers - 1 {
            let shared = Arc::clone(&self.shared);
            let h = std::thread::Builder::new()
                .name(format!("rx-query-{i}"))
                .spawn(move || loop {
                    let job = {
                        let mut q = shared.queue.lock();
                        loop {
                            if shared.shutdown.load(Ordering::Acquire) {
                                return;
                            }
                            if let Some(j) = q.pop_front() {
                                break j;
                            }
                            shared.available.wait(&mut q);
                        }
                    };
                    job();
                })
                .expect("spawn query worker");
            handles.push(h);
        }
    }

    /// Run `tasks` with up to `workers` of them in flight at once, returning
    /// their results in task order. The calling thread participates in the
    /// drain, so a batch completes even when every pool thread is busy with
    /// other batches; with one lane (or one task) everything runs inline.
    pub fn run_batch<T: Send + 'static>(
        &self,
        tasks: Vec<Box<dyn FnOnce() -> T + Send>>,
    ) -> Vec<T> {
        let n = tasks.len();
        if n == 0 {
            return Vec::new();
        }
        if self.workers <= 1 || n == 1 {
            return tasks.into_iter().map(|t| t()).collect();
        }
        self.ensure_started();
        self.parallel_queries.fetch_add(1, Ordering::Relaxed);
        let batch = Arc::new(Batch {
            tasks: tasks
                .into_iter()
                .map(|t| Mutex::new(Some(t)))
                .collect::<Vec<_>>(),
            next: AtomicUsize::new(0),
            results: Mutex::new((0..n).map(|_| None).collect()),
            remaining: Mutex::new(n),
            done: Condvar::new(),
        });
        // Enough helpers to fill the other lanes; extras would only find an
        // exhausted cursor, so don't queue them.
        let helpers = (self.workers - 1).min(n - 1);
        {
            let mut q = self.shared.queue.lock();
            for _ in 0..helpers {
                let b = Arc::clone(&batch);
                q.push_back(Box::new(move || drain_batch(&b)));
            }
        }
        self.shared.available.notify_all();
        drain_batch(&batch);
        let mut rem = batch.remaining.lock();
        while *rem > 0 {
            batch.done.wait(&mut rem);
        }
        drop(rem);
        let mut results = batch.results.lock();
        results
            .iter_mut()
            .map(|r| r.take().expect("task result missing"))
            .collect()
    }
}

impl Drop for QueryExecutor {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.available.notify_all();
        for h in self.handles.lock().drain(..) {
            let _ = h.join();
        }
    }
}

// ---------------------------------------------------------------------------
// Plan cache
// ---------------------------------------------------------------------------

/// Cache key: one entry per distinct query against one column. The path is
/// keyed by its canonical text (`Path::to_string`), so differently written
/// but identical queries share an entry; `prefer_nodeid` is part of the key
/// because it changes the chosen plan.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct PlanKey {
    /// Owning table id.
    pub table: u32,
    /// XML column name.
    pub column: String,
    /// Canonical path text.
    pub path: String,
    /// NodeID-granularity preference used at planning time.
    pub prefer_nodeid: bool,
}

/// A cached compiled query: the QuickXScan query tree plus the selected
/// access plan, both behind `Arc`s so workers share them without copying.
pub struct CachedPlan {
    /// Compiled query tree (immutable, shared across worker threads).
    pub tree: Arc<QueryTree>,
    /// Selected access plan (holds `Arc`s to the indexes it scans).
    pub plan: Arc<AccessPlan>,
}

struct PlanCacheInner {
    map: HashMap<PlanKey, (Arc<CachedPlan>, u64)>,
    tick: u64,
}

/// An LRU cache of compiled plans, shared by every query against the
/// database. Invalidated per table on index DDL and table drop — a cached
/// plan holds `Arc`s to the index set it was planned against, so it must not
/// outlive a change to that set.
pub struct PlanCache {
    capacity: usize,
    inner: Mutex<PlanCacheInner>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl PlanCache {
    /// Create a cache holding at most `capacity` plans (0 disables caching).
    pub fn new(capacity: usize) -> PlanCache {
        PlanCache {
            capacity,
            inner: Mutex::new(PlanCacheInner {
                map: HashMap::new(),
                tick: 0,
            }),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Look up a plan, refreshing its LRU position.
    pub fn get(&self, key: &PlanKey) -> Option<Arc<CachedPlan>> {
        let mut inner = self.inner.lock();
        inner.tick += 1;
        let tick = inner.tick;
        match inner.map.get_mut(key) {
            Some((plan, used)) => {
                *used = tick;
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(Arc::clone(plan))
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Insert a plan, evicting the least-recently-used entry when full.
    pub fn insert(&self, key: PlanKey, plan: Arc<CachedPlan>) {
        if self.capacity == 0 {
            return;
        }
        let mut inner = self.inner.lock();
        inner.tick += 1;
        let tick = inner.tick;
        inner.map.insert(key, (plan, tick));
        while inner.map.len() > self.capacity {
            let Some(victim) = inner
                .map
                .iter()
                .min_by_key(|(_, (_, used))| *used)
                .map(|(k, _)| k.clone())
            else {
                break;
            };
            inner.map.remove(&victim);
        }
    }

    /// Drop every cached plan against `table` (index DDL, table drop).
    pub fn invalidate_table(&self, table: u32) {
        self.inner.lock().map.retain(|k, _| k.table != table);
    }

    /// Lookups that found a cached plan.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that missed (the caller compiled and planned afresh).
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Plans currently cached.
    pub fn len(&self) -> usize {
        self.inner.lock().map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(table: u32, path: &str) -> PlanKey {
        PlanKey {
            table,
            column: "doc".into(),
            path: path.into(),
            prefer_nodeid: false,
        }
    }

    fn dummy_plan() -> Arc<CachedPlan> {
        let path = rx_xpath::XPathParser::new().parse("/a/b").unwrap();
        Arc::new(CachedPlan {
            tree: Arc::new(QueryTree::compile(&path).unwrap()),
            plan: Arc::new(AccessPlan::FullScan),
        })
    }

    #[test]
    fn batch_results_keep_task_order() {
        let exec = QueryExecutor::new(4);
        let tasks: Vec<Box<dyn FnOnce() -> usize + Send>> = (0..64)
            .map(|i| {
                let f: Box<dyn FnOnce() -> usize + Send> = Box::new(move || {
                    // Stagger so completion order differs from task order.
                    if i % 7 == 0 {
                        std::thread::sleep(std::time::Duration::from_micros(200));
                    }
                    i * 3
                });
                f
            })
            .collect();
        let out = exec.run_batch(tasks);
        assert_eq!(out, (0..64).map(|i| i * 3).collect::<Vec<_>>());
        assert_eq!(exec.parallel_queries(), 1);
    }

    #[test]
    fn single_lane_runs_inline_without_threads() {
        let exec = QueryExecutor::new(1);
        let tid = std::thread::current().id();
        let tasks: Vec<Box<dyn FnOnce() -> bool + Send>> = (0..8)
            .map(|_| {
                let f: Box<dyn FnOnce() -> bool + Send> =
                    Box::new(move || std::thread::current().id() == tid);
                f
            })
            .collect();
        assert!(exec.run_batch(tasks).into_iter().all(|on_caller| on_caller));
        assert_eq!(exec.parallel_queries(), 0);
        assert!(exec.handles.lock().is_empty());
    }

    #[test]
    fn concurrent_batches_share_the_pool() {
        let exec = Arc::new(QueryExecutor::new(4));
        std::thread::scope(|s| {
            for _ in 0..8 {
                let exec = Arc::clone(&exec);
                s.spawn(move || {
                    let tasks: Vec<Box<dyn FnOnce() -> u64 + Send>> = (0..16u64)
                        .map(|i| {
                            let f: Box<dyn FnOnce() -> u64 + Send> = Box::new(move || i);
                            f
                        })
                        .collect();
                    let out = exec.run_batch(tasks);
                    assert_eq!(out.iter().sum::<u64>(), 120);
                });
            }
        });
        assert_eq!(exec.parallel_queries(), 8);
    }

    #[test]
    fn lru_evicts_oldest_and_counts() {
        let cache = PlanCache::new(2);
        cache.insert(key(1, "/a"), dummy_plan());
        cache.insert(key(1, "/b"), dummy_plan());
        assert!(cache.get(&key(1, "/a")).is_some()); // refresh /a
        cache.insert(key(1, "/c"), dummy_plan()); // evicts /b
        assert!(cache.get(&key(1, "/b")).is_none());
        assert!(cache.get(&key(1, "/a")).is_some());
        assert!(cache.get(&key(1, "/c")).is_some());
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.hits(), 3);
        assert_eq!(cache.misses(), 1);
    }

    #[test]
    fn invalidation_is_per_table() {
        let cache = PlanCache::new(8);
        cache.insert(key(1, "/a"), dummy_plan());
        cache.insert(key(2, "/a"), dummy_plan());
        cache.invalidate_table(1);
        assert!(cache.get(&key(1, "/a")).is_none());
        assert!(cache.get(&key(2, "/a")).is_some());
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let cache = PlanCache::new(0);
        cache.insert(key(1, "/a"), dummy_plan());
        assert!(cache.get(&key(1, "/a")).is_none());
        assert_eq!(cache.len(), 0);
    }
}
