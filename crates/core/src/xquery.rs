//! XQuery-lite: FLWOR expressions over stored XML.
//!
//! §6 lists "more complete XQuery" as future work; this module grows the
//! engine one step in that direction with the data-centric FLWOR core:
//!
//! ```text
//! for $v in <absolute path>
//! [where <predicate on $v>]
//! [order by $v/<relative path> [descending]]
//! return <element>{ $v/<relative path> | 'literal' | nested element }</element>
//! ```
//!
//! Everything reuses the machinery the paper describes: the `for` clause is
//! an XPath evaluated through the §4.3 access-path selection (so an indexed
//! predicate in the binding path uses DocID/NodeID lists), `where` folds into
//! the binding path as a predicate, `return` compiles to a §4.1 tagging
//! template per binding, and `$v/...` projections run QuickXScan over the
//! bound subtree replay (§4.4 deferred access — only matched subtrees are
//! fetched).

use crate::access;
use crate::db::{BaseTable, Database, XmlColumn};
use crate::error::{EngineError, Result};
use crate::traverse::{IdEventSink, Traverser};
use crate::xmltable::DocId;
use rx_xml::event::{Event, EventSink};
use rx_xml::nodeid::NodeId;
use rx_xml::value::TypeAnn;
use rx_xml::NameDict;
use rx_xpath::ast::{Expr, Path, Step};
use rx_xpath::quickxscan::QuickXScan;
use rx_xpath::{QueryTree, XPathParser};
use std::sync::Arc;

/// One item of the `return` clause's content.
#[derive(Debug, Clone, PartialEq)]
pub enum RetItem {
    /// A literal text chunk.
    Literal(String),
    /// `{ $v }` or `{ $v/rel/path }`: project the binding (string values,
    /// concatenated in document order).
    VarPath(Path),
    /// A nested element constructor.
    Element {
        /// Element name.
        name: String,
        /// Content items.
        content: Vec<RetItem>,
    },
}

/// A parsed FLWOR expression.
#[derive(Debug, Clone, PartialEq)]
pub struct Flwor {
    /// Binding variable name (without `$`).
    pub var: String,
    /// Absolute binding path (with the folded `where` predicate).
    pub binding: Path,
    /// Optional order-by: relative path + descending flag.
    pub order_by: Option<(Path, bool)>,
    /// Return-clause template.
    pub ret: Vec<RetItem>,
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

struct Cur<'a> {
    s: &'a str,
    pos: usize,
}

impl<'a> Cur<'a> {
    fn ws(&mut self) {
        while self.s[self.pos..].starts_with(|c: char| c.is_whitespace()) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, word: &str) -> bool {
        self.ws();
        if self.s[self.pos..].starts_with(word) {
            self.pos += word.len();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, word: &str) -> Result<()> {
        if self.eat(word) {
            Ok(())
        } else {
            Err(EngineError::Invalid(format!(
                "expected {word:?} at …{}",
                &self.s[self.pos..self.pos.saturating_add(30).min(self.s.len())]
            )))
        }
    }

    fn ident(&mut self) -> Result<&'a str> {
        self.ws();
        let start = self.pos;
        while self.s[self.pos..].starts_with(|c: char| c.is_alphanumeric() || c == '_' || c == '-')
        {
            self.pos += self.s[self.pos..].chars().next().unwrap().len_utf8();
        }
        if self.pos == start {
            return Err(EngineError::Invalid(format!(
                "expected an identifier at …{}",
                &self.s[start..start.saturating_add(20).min(self.s.len())]
            )));
        }
        Ok(&self.s[start..self.pos])
    }

    /// Consume up to (not including) any of the given top-level keywords.
    fn until_keyword(&mut self, keywords: &[&str]) -> &'a str {
        self.ws();
        let start = self.pos;
        let bytes = self.s.as_bytes();
        while self.pos < self.s.len() {
            let rest = &self.s[self.pos..];
            if keywords.iter().any(|k| {
                rest.starts_with(k) && (self.pos == 0 || bytes[self.pos - 1].is_ascii_whitespace())
            }) {
                break;
            }
            self.pos += rest.chars().next().unwrap().len_utf8();
        }
        self.s[start..self.pos].trim()
    }
}

/// Parse a FLWOR expression. The `where` clause must reference the binding
/// variable (`$v/...` comparisons) and folds into the binding path.
pub fn parse_flwor(input: &str, xpath: &XPathParser) -> Result<Flwor> {
    let mut c = Cur { s: input, pos: 0 };
    c.expect("for")?;
    c.expect("$")?;
    let var = c.ident()?.to_string();
    c.expect("in")?;
    let binding_text = c.until_keyword(&["where", "order", "return"]);
    let mut binding = xpath.parse(binding_text)?;

    // where: rewrite `$v/rel op lit` into a predicate on the last step.
    c.ws();
    if c.eat("where") {
        let cond_text = c.until_keyword(&["order", "return"]);
        let pred = parse_condition(cond_text, &var, xpath)?;
        let last = binding
            .steps
            .last_mut()
            .ok_or_else(|| EngineError::Invalid("binding path needs at least one step".into()))?;
        last.predicates.push(pred);
    }

    c.ws();
    let order_by = if c.eat("order") {
        c.expect("by")?;
        let ob_text = c.until_keyword(&["return"]);
        let (path_text, desc) = match ob_text.strip_suffix("descending") {
            Some(p) => (p.trim(), true),
            None => (
                ob_text.strip_suffix("ascending").unwrap_or(ob_text).trim(),
                false,
            ),
        };
        Some((var_relative_path(path_text, &var, xpath)?, desc))
    } else {
        None
    };

    c.expect("return")?;
    c.ws();
    let ret = parse_return(&mut c, &var, xpath)?;
    c.ws();
    if c.pos != c.s.len() {
        return Err(EngineError::Invalid(format!(
            "trailing input after return clause: {:?}",
            &c.s[c.pos..]
        )));
    }
    Ok(Flwor {
        var,
        binding,
        order_by,
        ret,
    })
}

/// `$v/rel/path` → relative Path; bare `$v` → empty relative path (self).
fn var_relative_path(text: &str, var: &str, xpath: &XPathParser) -> Result<Path> {
    let t = text.trim();
    let prefix = format!("${var}");
    let Some(rest) = t.strip_prefix(&prefix) else {
        return Err(EngineError::Invalid(format!("expected ${var}/… in {t:?}")));
    };
    let rest = rest.trim();
    if rest.is_empty() {
        // Self: model as `.` — empty steps.
        return Ok(Path {
            absolute: false,
            steps: Vec::new(),
        });
    }
    let rel = rest
        .strip_prefix('/')
        .ok_or_else(|| EngineError::Invalid(format!("expected a path after ${var} in {t:?}")))?;
    let parsed = xpath.parse(&format!("/{rel}"))?;
    Ok(Path {
        absolute: false,
        steps: parsed.steps,
    })
}

/// Parse `$v/rel op literal` (or a bare `$v/rel` existence test) as an XPath
/// predicate expression relative to the binding.
fn parse_condition(text: &str, var: &str, xpath: &XPathParser) -> Result<Expr> {
    // Replace the `$v` reference with `.` and parse as a predicate body.
    let prefix = format!("${var}/");
    let rewritten = if text.trim().starts_with(&prefix) {
        text.trim().replacen(&prefix, "", 1)
    } else {
        return Err(EngineError::Invalid(format!(
            "where clause must start with ${var}/…, got {text:?}"
        )));
    };
    // Wrap as a predicate: parse `/x[ <rewritten> ]` and pull the predicate.
    let probe = format!("/x[{rewritten}]");
    let parsed = xpath.parse(&probe)?;
    let step = parsed
        .steps
        .first()
        .ok_or_else(|| EngineError::Invalid("empty where clause".into()))?;
    step.predicates
        .first()
        .cloned()
        .ok_or_else(|| EngineError::Invalid("empty where clause".into()))
}

fn parse_return(c: &mut Cur<'_>, var: &str, xpath: &XPathParser) -> Result<Vec<RetItem>> {
    // Either one element constructor or a single { $v/... } projection.
    c.ws();
    if c.s[c.pos..].starts_with('<') {
        Ok(vec![parse_elem(c, var, xpath)?])
    } else if c.s[c.pos..].starts_with('{') {
        Ok(vec![parse_brace(c, var, xpath)?])
    } else {
        Err(EngineError::Invalid(
            "return clause must be an element constructor or a { … } projection".into(),
        ))
    }
}

fn parse_brace(c: &mut Cur<'_>, var: &str, xpath: &XPathParser) -> Result<RetItem> {
    c.expect("{")?;
    c.ws();
    let inner_start = c.pos;
    while c.pos < c.s.len() && !c.s[c.pos..].starts_with('}') {
        c.pos += c.s[c.pos..].chars().next().unwrap().len_utf8();
    }
    let inner = c.s[inner_start..c.pos].trim().to_string();
    c.expect("}")?;
    Ok(RetItem::VarPath(var_relative_path(&inner, var, xpath)?))
}

fn parse_elem(c: &mut Cur<'_>, var: &str, xpath: &XPathParser) -> Result<RetItem> {
    c.expect("<")?;
    let name = c.ident()?.to_string();
    c.expect(">")?;
    let mut content = Vec::new();
    loop {
        c.ws();
        if c.s[c.pos..].starts_with("</") {
            break;
        }
        if c.s[c.pos..].starts_with('<') {
            content.push(parse_elem(c, var, xpath)?);
        } else if c.s[c.pos..].starts_with('{') {
            content.push(parse_brace(c, var, xpath)?);
        } else {
            // Literal run until '<' or '{'.
            let start = c.pos;
            while c.pos < c.s.len()
                && !c.s[c.pos..].starts_with('<')
                && !c.s[c.pos..].starts_with('{')
            {
                c.pos += c.s[c.pos..].chars().next().unwrap().len_utf8();
            }
            let lit = &c.s[start..c.pos];
            if !lit.trim().is_empty() {
                content.push(RetItem::Literal(lit.trim().to_string()));
            }
        }
    }
    c.expect("</")?;
    let close = c.ident()?;
    if close != name {
        return Err(EngineError::Invalid(format!(
            "constructor end tag </{close}> does not match <{name}>"
        )));
    }
    c.expect(">")?;
    Ok(RetItem::Element { name, content })
}

// ---------------------------------------------------------------------------
// Evaluation
// ---------------------------------------------------------------------------

/// Execute a FLWOR over one XML column, returning one serialized XML string
/// per binding (in binding order, or `order by` order).
pub fn execute_flwor(
    db: &Arc<Database>,
    table: &Arc<BaseTable>,
    column: &Arc<XmlColumn>,
    flwor: &Flwor,
) -> Result<Vec<String>> {
    let dict = db.dict();
    // The for clause goes through access-path selection (§4.3).
    let plan = access::plan(&flwor.binding, column, false);
    let (hits, _) = access::execute(&plan, table, column, dict, &flwor.binding)?;

    // Evaluate order-by keys and sort bindings.
    let mut bindings: Vec<(DocId, NodeId, String)> = Vec::with_capacity(hits.len());
    for h in hits {
        let Some(node) = h.node else { continue };
        let key = match &flwor.order_by {
            Some((rel, _)) => project(column, dict, h.doc, &node, rel)?.join(""),
            None => String::new(),
        };
        bindings.push((h.doc, node, key));
    }
    if let Some((_, desc)) = &flwor.order_by {
        bindings.sort_by(|a, b| if *desc { b.2.cmp(&a.2) } else { a.2.cmp(&b.2) });
    }

    // Render the return clause per binding.
    let mut out = Vec::with_capacity(bindings.len());
    for (doc, node, _) in &bindings {
        let mut ser = rx_xml::Serializer::new(dict);
        for item in &flwor.ret {
            render(column, dict, *doc, node, item, &mut ser)?;
        }
        out.push(ser.finish());
    }
    Ok(out)
}

fn render(
    column: &Arc<XmlColumn>,
    dict: &NameDict,
    doc: DocId,
    node: &NodeId,
    item: &RetItem,
    sink: &mut dyn EventSink,
) -> Result<()> {
    match item {
        RetItem::Literal(s) => sink.event(Event::Text {
            value: s,
            ann: TypeAnn::Untyped,
        })?,
        RetItem::Element { name, content } => {
            let qn = dict.intern("", "", name);
            sink.event(Event::StartElement { name: qn })?;
            for c in content {
                render(column, dict, doc, node, c, sink)?;
            }
            sink.event(Event::EndElement)?;
        }
        RetItem::VarPath(rel) => {
            if rel.steps.is_empty() {
                // `{ $v }`: replay the whole bound subtree (deferred fetch).
                let mut t = Traverser::new(column.xml_table(), doc);
                let mut adapter = crate::traverse::DropIds(sink);
                t.run_subtree(node, &mut adapter)?;
            } else {
                for v in project(column, dict, doc, node, rel)? {
                    sink.event(Event::Text {
                        value: &v,
                        ann: TypeAnn::Untyped,
                    })?;
                }
            }
        }
    }
    Ok(())
}

/// Evaluate a relative path against the subtree rooted at `node`: replay the
/// subtree as if its root were the document root and run QuickXScan with the
/// path re-anchored under `/*`.
fn project(
    column: &Arc<XmlColumn>,
    dict: &NameDict,
    doc: DocId,
    node: &NodeId,
    rel: &Path,
) -> Result<Vec<String>> {
    // Build `/*/rel...`: the subtree root is the single top-level element.
    let mut steps = vec![Step {
        axis: rx_xpath::Axis::Child,
        test: rx_xpath::NodeTest::AnyName,
        predicates: Vec::new(),
    }];
    steps.extend(rel.steps.iter().cloned());
    let abs = Path {
        absolute: true,
        steps,
    };
    let tree = QueryTree::compile(&abs)?;
    let mut scan = QuickXScan::new(&tree, dict);
    scan.event(Event::StartDocument)?;
    struct S<'a, 'q, 'd> {
        scan: &'a mut QuickXScan<'q, 'd>,
    }
    impl IdEventSink for S<'_, '_, '_> {
        fn id_event(&mut self, id: &NodeId, ev: Event<'_>) -> Result<()> {
            self.scan.set_current_node(id.clone());
            self.scan.event(ev)?;
            Ok(())
        }
    }
    let mut t = Traverser::new(column.xml_table(), doc);
    t.run_subtree(node, &mut S { scan: &mut scan })?;
    scan.event(Event::EndDocument)?;
    let items = scan.finish()?;
    Ok(items.into_iter().map(|i| i.value).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::db::{ColValue, ColumnKind};
    use rx_xml::value::KeyType;

    fn setup() -> (Arc<Database>, Arc<BaseTable>, Arc<XmlColumn>, XPathParser) {
        let db = Database::create_in_memory().unwrap();
        let t = db.create_table("c", &[("doc", ColumnKind::Xml)]).unwrap();
        db.create_value_index(
            "c",
            "price",
            "doc",
            "/Catalog/Product/RegPrice",
            KeyType::Double,
        )
        .unwrap();
        for (name, price) in [("Widget", 10.0), ("Gadget", 150.0), ("Gizmo", 90.0)] {
            db.insert_row(
                &t,
                &[ColValue::Xml(format!(
                    "<Catalog><Product><ProductName>{name}</ProductName>\
                     <RegPrice>{price}</RegPrice></Product></Catalog>"
                ))],
            )
            .unwrap();
        }
        let col = Arc::clone(t.xml_column("doc").unwrap());
        (db, t, col, XPathParser::new())
    }

    #[test]
    fn basic_for_return() {
        let (db, t, col, xp) = setup();
        let f = parse_flwor(
            "for $p in /Catalog/Product return <name>{ $p/ProductName }</name>",
            &xp,
        )
        .unwrap();
        let out = execute_flwor(&db, &t, &col, &f).unwrap();
        assert_eq!(
            out,
            vec![
                "<name>Widget</name>",
                "<name>Gadget</name>",
                "<name>Gizmo</name>"
            ]
        );
    }

    #[test]
    fn where_clause_uses_index_plan() {
        let (db, t, col, xp) = setup();
        let f = parse_flwor(
            "for $p in /Catalog/Product where $p/RegPrice > 50 \
             return <hit>{ $p/ProductName }</hit>",
            &xp,
        )
        .unwrap();
        // The folded predicate is plannable against the price index.
        let plan = access::plan(&f.binding, &col, false);
        assert!(
            plan.explain().contains("DocID list access"),
            "{}",
            plan.explain()
        );
        let out = execute_flwor(&db, &t, &col, &f).unwrap();
        assert_eq!(out, vec!["<hit>Gadget</hit>", "<hit>Gizmo</hit>"]);
    }

    #[test]
    fn order_by_ascending_and_descending() {
        let (db, t, col, xp) = setup();
        let f = parse_flwor(
            "for $p in /Catalog/Product order by $p/ProductName \
             return <n>{ $p/ProductName }</n>",
            &xp,
        )
        .unwrap();
        let out = execute_flwor(&db, &t, &col, &f).unwrap();
        assert_eq!(out, vec!["<n>Gadget</n>", "<n>Gizmo</n>", "<n>Widget</n>"]);
        let f = parse_flwor(
            "for $p in /Catalog/Product order by $p/ProductName descending \
             return <n>{ $p/ProductName }</n>",
            &xp,
        )
        .unwrap();
        let out = execute_flwor(&db, &t, &col, &f).unwrap();
        assert_eq!(out[0], "<n>Widget</n>");
    }

    #[test]
    fn nested_constructors_and_literals() {
        let (db, t, col, xp) = setup();
        let f = parse_flwor(
            "for $p in /Catalog/Product where $p/RegPrice > 100 \
             return <offer><title>SALE: { $p/ProductName }</title>\
             <was>{ $p/RegPrice }</was></offer>",
            &xp,
        )
        .unwrap();
        let out = execute_flwor(&db, &t, &col, &f).unwrap();
        assert_eq!(
            out,
            vec!["<offer><title>SALE:Gadget</title><was>150</was></offer>"]
        );
    }

    #[test]
    fn whole_binding_projection() {
        let (db, t, col, xp) = setup();
        let f = parse_flwor(
            "for $p in /Catalog/Product where $p/RegPrice > 100 \
             return <wrap>{ $p }</wrap>",
            &xp,
        )
        .unwrap();
        let out = execute_flwor(&db, &t, &col, &f).unwrap();
        assert_eq!(
            out,
            vec![
                "<wrap><Product><ProductName>Gadget</ProductName>\
                 <RegPrice>150</RegPrice></Product></wrap>"
            ]
        );
    }

    #[test]
    fn parse_errors() {
        let xp = XPathParser::new();
        assert!(parse_flwor("for p in /a return <x></x>", &xp).is_err());
        assert!(parse_flwor("for $p in /a", &xp).is_err());
        assert!(parse_flwor("for $p in /a return <x></y>", &xp).is_err());
        assert!(parse_flwor("for $p in /a where q/z > 1 return <x></x>", &xp).is_err());
    }
}
