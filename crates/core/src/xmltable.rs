//! The internal XML table and its NodeID index (§3.1, Fig. 2).
//!
//! "An internal table space is created for each XML column in a base table.
//! The internal XML table is a table that has three columns (DocID,
//! minNodeID, XMLData) … A NodeID index is created on each XML table to map a
//! logical node ID to its physical record ID (RID). For each contiguous
//! interval of node IDs for nodes within a record in document order, only one
//! entry is in the node ID index, which is the upper end point of the node ID
//! interval."
//!
//! Rows of the internal table are ordinary heap records `(DocID, minNodeID,
//! XMLData)`; the NodeID index is an ordinary B+tree with keys
//! `(DocID big-endian, NodeID bytes)` — both live entirely on the relational
//! infrastructure, which is the paper's point.

use crate::doccache::DocCache;
use crate::error::Result;
use crate::pack::PackedRecord;
use rx_storage::codec::{Dec, Enc};
use rx_storage::wal::LogRecord;
use rx_storage::{BTree, HeapTable, Rid, TableSpace, Txn};
use rx_xml::nodeid::NodeId;
use std::sync::{Arc, OnceLock};

/// Document identifier (the implicit DocID column of §3.1).
pub type DocId = u64;

/// Anchor slot within the XML table's space where the NodeID index root
/// lives (slots 0/1 belong to the heap).
pub const NODEID_INDEX_ANCHOR: usize = 2;

/// Encode a NodeID-index key: `(DocID BE, NodeID bytes)`. Big-endian DocID
/// keeps keys of one document contiguous and ordered.
pub fn nodeid_key(doc: DocId, node: &NodeId) -> Vec<u8> {
    let mut k = Vec::with_capacity(8 + node.as_bytes().len());
    k.extend_from_slice(&doc.to_be_bytes());
    k.extend_from_slice(node.as_bytes());
    k
}

/// Decode a NodeID-index key.
pub fn decode_nodeid_key(key: &[u8]) -> Option<(DocId, NodeId)> {
    if key.len() < 8 {
        return None;
    }
    let doc = DocId::from_be_bytes(key[..8].try_into().ok()?);
    Some((doc, NodeId::from_bytes_unchecked(key[8..].to_vec())))
}

/// The smallest node ID strictly after the whole subtree rooted at `id`
/// (used to continue range-proxy resolution past a consumed subtree, and for
/// next-sibling skipping across records, §3.4).
pub fn subtree_successor(id: &NodeId) -> Vec<u8> {
    let mut b = id.as_bytes().to_vec();
    if let Some(last) = b.last_mut() {
        *last += 1; // node IDs end on an even byte <= 0xFE
    } else {
        // Successor of the document root: past everything in this document.
        b.push(0xFF);
    }
    b
}

/// A stored row of the internal XML table.
#[derive(Debug, Clone, PartialEq)]
pub struct XmlRow {
    /// Owning document.
    pub doc: DocId,
    /// Clustering minor key.
    pub min_node: NodeId,
    /// The packed record image.
    pub data: Vec<u8>,
}

fn encode_row(doc: DocId, min_node: &NodeId, data: &[u8]) -> Vec<u8> {
    let mut e = Enc::with_capacity(16 + data.len());
    e.u64(doc);
    e.bytes(min_node.as_bytes());
    e.bytes(data);
    e.into_bytes()
}

/// Decode an XML-table row.
pub fn decode_row(rec: &[u8]) -> Result<XmlRow> {
    let mut d = Dec::new(rec);
    let doc = d.u64()?;
    let min_node = NodeId::from_bytes_unchecked(d.bytes()?.to_vec());
    let data = d.bytes()?.to_vec();
    Ok(XmlRow {
        doc,
        min_node,
        data,
    })
}

/// The byte range of the XMLData payload within an encoded row — the
/// zero-copy complement of [`decode_row`] used by the document cache and
/// the traverser's shared-record path.
pub fn decode_row_data_range(rec: &[u8]) -> Result<std::ops::Range<usize>> {
    crate::doccache::row_data_range(rec)
}

/// The internal XML table: heap of packed records + NodeID index, sharing
/// one table space.
pub struct XmlTable {
    heap: Arc<HeapTable>,
    nodeid_index: Arc<BTree>,
    space_id: u32,
    /// Record-edit latch: §5.2 notes that "a group of nodes form a record",
    /// so two transactions holding X locks on *disjoint subtrees* may still
    /// need to rewrite the *same* packed record. This short latch makes each
    /// read-modify-write of a record atomic ("record level consistency");
    /// it is held only for the duration of one edit, unlike the subtree
    /// locks, which are held to commit.
    edit_latch: parking_lot::Mutex<()>,
    /// The database's document record cache, when this table belongs to a
    /// [`crate::db::Database`] with `doc_cache_bytes > 0`. Every mutator
    /// notifies it (`touch`) so cached snapshots are invalidated before any
    /// uncommitted byte lands in the heap.
    doc_cache: OnceLock<Arc<DocCache>>,
}

impl XmlTable {
    /// Create the heap and NodeID index in `space`.
    pub fn create(space: Arc<TableSpace>) -> Result<XmlTable> {
        let space_id = space.id();
        let heap = HeapTable::create(space.clone())?;
        let nodeid_index = BTree::create(space, NODEID_INDEX_ANCHOR)?;
        Ok(XmlTable {
            heap,
            nodeid_index,
            space_id,
            edit_latch: parking_lot::Mutex::new(()),
            doc_cache: OnceLock::new(),
        })
    }

    /// Open an existing XML table.
    pub fn open(space: Arc<TableSpace>) -> Result<XmlTable> {
        let space_id = space.id();
        let heap = HeapTable::open(space.clone())?;
        let nodeid_index = BTree::open(space, NODEID_INDEX_ANCHOR)?;
        Ok(XmlTable {
            heap,
            nodeid_index,
            space_id,
            edit_latch: parking_lot::Mutex::new(()),
            doc_cache: OnceLock::new(),
        })
    }

    /// The table space id (for WAL records and recovery wiring).
    pub fn space_id(&self) -> u32 {
        self.space_id
    }

    /// The record heap.
    pub fn heap(&self) -> &Arc<HeapTable> {
        &self.heap
    }

    /// The NodeID index.
    pub fn nodeid_index(&self) -> &Arc<BTree> {
        &self.nodeid_index
    }

    /// Acquire the record-edit latch for one read-modify-write cycle.
    pub fn edit_guard(&self) -> parking_lot::MutexGuard<'_, ()> {
        self.edit_latch.lock()
    }

    /// Attach the database's document record cache. First attachment wins;
    /// tables constructed outside a [`crate::db::Database`] never have one
    /// and always take the cold read path.
    pub fn set_doc_cache(&self, cache: Arc<DocCache>) {
        let _ = self.doc_cache.set(cache);
    }

    /// The attached document record cache, if any.
    pub fn doc_cache(&self) -> Option<&Arc<DocCache>> {
        self.doc_cache.get()
    }

    /// Notify the cache that `txn` is mutating `doc`: evicts any cached
    /// snapshot and bumps the document's epoch *before* the mutation's bytes
    /// reach the heap, so no reader can publish a snapshot spanning them.
    fn touch_cache(&self, txn: &Txn, doc: DocId) {
        if let Some(cache) = self.doc_cache.get() {
            cache.touch(txn, self.space_id, doc);
        }
    }

    /// Store one packed record of document `doc`, maintaining the NodeID
    /// index, WAL, and undo chain. Returns the record's RID.
    pub fn insert_record(&self, txn: &Txn, doc: DocId, rec: &PackedRecord) -> Result<Rid> {
        self.touch_cache(txn, doc);
        let row = encode_row(doc, &rec.min_id, &rec.bytes);
        let rid = self.heap.insert(&row)?;
        txn.log(&LogRecord::HeapInsert {
            txn: txn.id(),
            space: self.space_id,
            rid,
            data: row.clone(),
        })?;
        {
            let heap = Arc::clone(&self.heap);
            let space = self.space_id;
            let before = row.clone();
            txn.push_undo(Box::new(move |ctx| {
                ctx.log(&LogRecord::HeapDelete {
                    txn: ctx.txn(),
                    space,
                    rid,
                    before,
                })?;
                heap.delete(rid)?;
                Ok(())
            }));
        }
        for upper in &rec.interval_uppers {
            let key = nodeid_key(doc, upper);
            let prev = self.nodeid_index.insert(&key, rid.to_u64())?;
            txn.log(&LogRecord::IndexInsert {
                txn: txn.id(),
                space: self.space_id,
                anchor: NODEID_INDEX_ANCHOR as u32,
                key: key.clone(),
                value: rid.to_u64(),
                prev,
            })?;
            let index = Arc::clone(&self.nodeid_index);
            let space = self.space_id;
            txn.push_undo(Box::new(move |ctx| {
                match prev {
                    Some(p) => {
                        ctx.log(&LogRecord::IndexInsert {
                            txn: ctx.txn(),
                            space,
                            anchor: NODEID_INDEX_ANCHOR as u32,
                            key: key.clone(),
                            value: p,
                            prev: None,
                        })?;
                        index.insert(&key, p)?;
                    }
                    None => {
                        ctx.log(&LogRecord::IndexDelete {
                            txn: ctx.txn(),
                            space,
                            anchor: NODEID_INDEX_ANCHOR as u32,
                            key: key.clone(),
                            value: rid.to_u64(),
                        })?;
                        index.delete(&key)?;
                    }
                }
                Ok(())
            }));
        }
        Ok(rid)
    }

    /// Fetch and decode the record at `rid`.
    pub fn fetch(&self, rid: Rid) -> Result<XmlRow> {
        let rec = self.heap.fetch(rid)?;
        decode_row(&rec)
    }

    /// Find the RID of the record containing `node` of `doc`: a ceiling probe
    /// for the first interval upper endpoint at-or-above the node ID (§3.4).
    pub fn locate(&self, doc: DocId, node: &NodeId) -> Result<Option<Rid>> {
        let probe = nodeid_key(doc, node);
        match self.nodeid_index.search_ceil(&probe)? {
            Some((key, rid)) if key.starts_with(&doc.to_be_bytes()) => Ok(Some(Rid::from_u64(rid))),
            _ => Ok(None),
        }
    }

    /// Like [`XmlTable::locate`] but probing with raw key bytes at-or-above a
    /// subtree successor (which may not itself be a well-formed node ID).
    pub fn locate_raw(&self, doc: DocId, node_bytes: &[u8]) -> Result<Option<(NodeId, Rid)>> {
        let mut probe = Vec::with_capacity(8 + node_bytes.len());
        probe.extend_from_slice(&doc.to_be_bytes());
        probe.extend_from_slice(node_bytes);
        match self.nodeid_index.search_ceil(&probe)? {
            Some((key, rid)) if key.starts_with(&doc.to_be_bytes()) => {
                let (_, upper) = decode_nodeid_key(&key).expect("well-formed index key");
                Ok(Some((upper, Rid::from_u64(rid))))
            }
            _ => Ok(None),
        }
    }

    /// All distinct RIDs of a document's records, in (doc, minNodeId) order.
    pub fn document_rids(&self, doc: DocId) -> Result<Vec<Rid>> {
        let mut rids = Vec::new();
        self.nodeid_index.scan_prefix(&doc.to_be_bytes(), |_, v| {
            let rid = Rid::from_u64(v);
            if !rids.contains(&rid) {
                rids.push(rid);
            }
            true
        })?;
        Ok(rids)
    }

    /// Delete every record and NodeID-index entry of document `doc`.
    pub fn delete_document(&self, txn: &Txn, doc: DocId) -> Result<()> {
        self.touch_cache(txn, doc);
        // Collect entries first (scan holds the tree latch).
        let mut entries: Vec<(Vec<u8>, Rid)> = Vec::new();
        self.nodeid_index.scan_prefix(&doc.to_be_bytes(), |k, v| {
            entries.push((k.to_vec(), Rid::from_u64(v)));
            true
        })?;
        let mut deleted_rids: Vec<Rid> = Vec::new();
        for (key, rid) in entries {
            self.nodeid_index.delete(&key)?;
            txn.log(&LogRecord::IndexDelete {
                txn: txn.id(),
                space: self.space_id,
                anchor: NODEID_INDEX_ANCHOR as u32,
                key: key.clone(),
                value: rid.to_u64(),
            })?;
            {
                let index = Arc::clone(&self.nodeid_index);
                let key = key.clone();
                let space = self.space_id;
                txn.push_undo(Box::new(move |ctx| {
                    ctx.log(&LogRecord::IndexInsert {
                        txn: ctx.txn(),
                        space,
                        anchor: NODEID_INDEX_ANCHOR as u32,
                        key: key.clone(),
                        value: rid.to_u64(),
                        prev: None,
                    })?;
                    index.insert(&key, rid.to_u64())?;
                    Ok(())
                }));
            }
            if !deleted_rids.contains(&rid) {
                let before = self.heap.fetch(rid)?;
                self.heap.delete(rid)?;
                txn.log(&LogRecord::HeapDelete {
                    txn: txn.id(),
                    space: self.space_id,
                    rid,
                    before: before.clone(),
                })?;
                let heap = Arc::clone(&self.heap);
                let space = self.space_id;
                txn.push_undo(Box::new(move |ctx| {
                    ctx.log(&LogRecord::HeapInsert {
                        txn: ctx.txn(),
                        space,
                        rid,
                        data: before.clone(),
                    })?;
                    heap.insert_at(rid, &before)?;
                    Ok(())
                }));
                deleted_rids.push(rid);
            }
        }
        Ok(())
    }

    /// Remove a set of NodeID-index entries (stale interval uppers of a
    /// record about to be rewritten). Logged and undoable.
    pub fn delete_uppers(&self, txn: &Txn, doc: DocId, uppers: &[NodeId]) -> Result<()> {
        self.touch_cache(txn, doc);
        for upper in uppers {
            let key = nodeid_key(doc, upper);
            if let Some(v) = self.nodeid_index.delete(&key)? {
                txn.log(&LogRecord::IndexDelete {
                    txn: txn.id(),
                    space: self.space_id,
                    anchor: NODEID_INDEX_ANCHOR as u32,
                    key: key.clone(),
                    value: v,
                })?;
                let index = Arc::clone(&self.nodeid_index);
                let space = self.space_id;
                txn.push_undo(Box::new(move |ctx| {
                    ctx.log(&LogRecord::IndexInsert {
                        txn: ctx.txn(),
                        space,
                        anchor: NODEID_INDEX_ANCHOR as u32,
                        key: key.clone(),
                        value: v,
                        prev: None,
                    })?;
                    index.insert(&key, v)?;
                    Ok(())
                }));
            }
        }
        Ok(())
    }

    /// Replace the packed record at `rid` (sub-document update path). The
    /// record must not move (callers re-pack within size limits); if the heap
    /// relocates it, the NodeID index entries pointing at it are rewritten.
    pub fn update_record(
        &self,
        txn: &Txn,
        doc: DocId,
        rid: Rid,
        rec: &PackedRecord,
        old_uppers: &[NodeId],
    ) -> Result<Rid> {
        self.touch_cache(txn, doc);
        let before = self.heap.fetch(rid)?;
        let row = encode_row(doc, &rec.min_id, &rec.bytes);
        let new_rid = self.heap.update(rid, &row)?;
        if new_rid == rid {
            txn.log(&LogRecord::HeapUpdate {
                txn: txn.id(),
                space: self.space_id,
                rid,
                before: before.clone(),
                after: row,
            })?;
            let heap = Arc::clone(&self.heap);
            let space = self.space_id;
            txn.push_undo(Box::new(move |ctx| {
                ctx.log(&LogRecord::HeapInsert {
                    txn: ctx.txn(),
                    space,
                    rid,
                    data: before.clone(),
                })?;
                heap.insert_at(rid, &before)?;
                Ok(())
            }));
        } else {
            txn.log(&LogRecord::HeapDelete {
                txn: txn.id(),
                space: self.space_id,
                rid,
                before: before.clone(),
            })?;
            txn.log(&LogRecord::HeapInsert {
                txn: txn.id(),
                space: self.space_id,
                rid: new_rid,
                data: row.clone(),
            })?;
            let heap = Arc::clone(&self.heap);
            let space = self.space_id;
            let row_copy = row.clone();
            txn.push_undo(Box::new(move |ctx| {
                ctx.log(&LogRecord::HeapDelete {
                    txn: ctx.txn(),
                    space,
                    rid: new_rid,
                    before: row_copy.clone(),
                })?;
                heap.delete(new_rid)?;
                ctx.log(&LogRecord::HeapInsert {
                    txn: ctx.txn(),
                    space,
                    rid,
                    data: before.clone(),
                })?;
                heap.insert_at(rid, &before)?;
                Ok(())
            }));
        }
        // Refresh index entries: remove stale uppers, install current ones.
        for upper in old_uppers {
            let key = nodeid_key(doc, upper);
            if let Some(v) = self.nodeid_index.delete(&key)? {
                txn.log(&LogRecord::IndexDelete {
                    txn: txn.id(),
                    space: self.space_id,
                    anchor: NODEID_INDEX_ANCHOR as u32,
                    key: key.clone(),
                    value: v,
                })?;
                let index = Arc::clone(&self.nodeid_index);
                let space = self.space_id;
                txn.push_undo(Box::new(move |ctx| {
                    ctx.log(&LogRecord::IndexInsert {
                        txn: ctx.txn(),
                        space,
                        anchor: NODEID_INDEX_ANCHOR as u32,
                        key: key.clone(),
                        value: v,
                        prev: None,
                    })?;
                    index.insert(&key, v)?;
                    Ok(())
                }));
            }
        }
        for upper in &rec.interval_uppers {
            let key = nodeid_key(doc, upper);
            let prev = self.nodeid_index.insert(&key, new_rid.to_u64())?;
            txn.log(&LogRecord::IndexInsert {
                txn: txn.id(),
                space: self.space_id,
                anchor: NODEID_INDEX_ANCHOR as u32,
                key: key.clone(),
                value: new_rid.to_u64(),
                prev,
            })?;
            let index = Arc::clone(&self.nodeid_index);
            let space = self.space_id;
            txn.push_undo(Box::new(move |ctx| {
                match prev {
                    Some(p) => {
                        ctx.log(&LogRecord::IndexInsert {
                            txn: ctx.txn(),
                            space,
                            anchor: NODEID_INDEX_ANCHOR as u32,
                            key: key.clone(),
                            value: p,
                            prev: None,
                        })?;
                        index.insert(&key, p)?;
                    }
                    None => {
                        ctx.log(&LogRecord::IndexDelete {
                            txn: ctx.txn(),
                            space,
                            anchor: NODEID_INDEX_ANCHOR as u32,
                            key: key.clone(),
                            value: new_rid.to_u64(),
                        })?;
                        index.delete(&key)?;
                    }
                }
                Ok(())
            }));
        }
        Ok(new_rid)
    }

    /// Storage statistics: (heap pages, heap records, heap record bytes,
    /// NodeID-index entries, NodeID-index pages).
    pub fn stats(&self) -> Result<(u64, u64, u64, u64, u64)> {
        let h = self.heap.stats()?;
        let entries = self.nodeid_index.len()?;
        let ipages = self.nodeid_index.page_count()?;
        Ok((h.pages, h.records, h.record_bytes, entries, ipages))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pack::{NoObserver, Packer};
    use rx_storage::wal::{MemLogStore, Wal};
    use rx_storage::{BufferPool, LockManager, MemBackend, TxnManager};
    use rx_xml::name::NameDict;
    use rx_xml::parser::Parser;

    fn setup() -> (XmlTable, Arc<TxnManager>) {
        let pool = BufferPool::new(512);
        let space = TableSpace::create(pool, 10, Arc::new(MemBackend::new())).unwrap();
        let xt = XmlTable::create(space).unwrap();
        let txns = TxnManager::new(
            Wal::new(Arc::new(MemLogStore::new())),
            LockManager::with_defaults(),
        );
        (xt, txns)
    }

    fn pack(input: &str, dict: &NameDict) -> Vec<PackedRecord> {
        let mut records = Vec::new();
        let mut obs = NoObserver;
        let mut p = Packer::with_target(600, &mut records, &mut obs);
        Parser::new(dict).parse(input, &mut p).unwrap();
        p.finish().unwrap();
        records
    }

    #[test]
    fn insert_and_locate() {
        let (xt, txns) = setup();
        let dict = NameDict::new();
        let filler = "y".repeat(300);
        let doc = format!("<a><b>{filler}</b><c>{filler}</c><d>tail</d></a>");
        let records = pack(&doc, &dict);
        assert!(records.len() >= 2);
        let txn = txns.begin().unwrap();
        for r in &records {
            xt.insert_record(&txn, 7, r).unwrap();
        }
        txn.commit().unwrap();

        // The root element (02) must be locatable.
        let root = NodeId::from_bytes(&[0x02]).unwrap();
        let rid = xt.locate(7, &root).unwrap().unwrap();
        let row = xt.fetch(rid).unwrap();
        assert_eq!(row.doc, 7);
        // An unknown document yields nothing.
        assert!(xt.locate(99, &root).unwrap().is_none());
        // Document rid listing covers all records.
        assert_eq!(xt.document_rids(7).unwrap().len(), records.len());
    }

    #[test]
    fn rollback_undoes_insert() {
        let (xt, txns) = setup();
        let dict = NameDict::new();
        let records = pack("<a><b>hello</b></a>", &dict);
        let txn = txns.begin().unwrap();
        for r in &records {
            xt.insert_record(&txn, 1, r).unwrap();
        }
        txn.rollback().unwrap();
        let root = NodeId::from_bytes(&[0x02]).unwrap();
        assert!(xt.locate(1, &root).unwrap().is_none());
        assert_eq!(xt.nodeid_index.len().unwrap(), 0);
        assert_eq!(xt.heap.stats().unwrap().records, 0);
    }

    #[test]
    fn delete_document_cleans_everything() {
        let (xt, txns) = setup();
        let dict = NameDict::new();
        let filler = "z".repeat(250);
        let doc = format!("<a><b>{filler}</b><c>{filler}</c></a>");
        for docid in 1..=3u64 {
            let txn = txns.begin().unwrap();
            for r in &pack(&doc, &dict) {
                xt.insert_record(&txn, docid, r).unwrap();
            }
            txn.commit().unwrap();
        }
        let before_entries = xt.nodeid_index.len().unwrap();
        let txn = txns.begin().unwrap();
        xt.delete_document(&txn, 2).unwrap();
        txn.commit().unwrap();
        let root = NodeId::from_bytes(&[0x02]).unwrap();
        assert!(xt.locate(2, &root).unwrap().is_none());
        assert!(xt.locate(1, &root).unwrap().is_some());
        assert!(xt.locate(3, &root).unwrap().is_some());
        assert_eq!(xt.nodeid_index.len().unwrap(), before_entries / 3 * 2);
    }

    #[test]
    fn multiple_documents_do_not_interfere() {
        let (xt, txns) = setup();
        let dict = NameDict::new();
        let txn = txns.begin().unwrap();
        for docid in [5u64, 6, 7] {
            let doc = format!("<d><v>{docid}</v></d>");
            for r in &pack(&doc, &dict) {
                xt.insert_record(&txn, docid, r).unwrap();
            }
        }
        txn.commit().unwrap();
        for docid in [5u64, 6, 7] {
            let root = NodeId::from_bytes(&[0x02]).unwrap();
            let rid = xt.locate(docid, &root).unwrap().unwrap();
            assert_eq!(xt.fetch(rid).unwrap().doc, docid);
        }
    }

    #[test]
    fn subtree_successor_skips_descendants() {
        let id = NodeId::from_bytes(&[0x02, 0x04]).unwrap();
        let succ = subtree_successor(&id);
        assert_eq!(succ, vec![0x02, 0x05]);
        // Every descendant of 0204 starts with [02, 04] < [02, 05].
        let deep = NodeId::from_bytes(&[0x02, 0x04, 0xFF, 0xFE]).unwrap();
        assert!(deep.as_bytes() < succ.as_slice());
        // The next sibling 0206 is >= the successor.
        assert!([0x02u8, 0x06].as_slice() >= succ.as_slice());
    }
}
