//! Index-based access methods and access-path selection (§4.3, Table 2).
//!
//! "Our approach is to use indexes to quickly identify a small subset of
//! candidates and then perform further processing on them. For small
//! documents, using indexes to identify qualifying documents would be
//! efficient, which we call DocID list access … For large documents … the
//! NodeID list access applies. Since we do not keep complete path information
//! in an XPath value index, when the XPath expression of the index contains a
//! query XPath expression but is not equivalent to it, we use the index for
//! filtering, and re-evaluation … is necessary. When multiple indexes are
//! used to evaluate a single XPath expression, we use DocID ANDing/ORing, or
//! NodeID ANDing/ORing at document level or node level, respectively."
//!
//! Exactness classification follows Table 2's discussion verbatim: all-exact
//! terms give an exact list; one exact term among containment terms still
//! gives an exact list under NodeID-level ANDing; otherwise the list is a
//! filter and re-evaluation runs.

use crate::db::{BaseTable, XmlColumn};
use crate::error::{EngineError, Result};
use crate::executor::{CachedPlan, PlanCache, PlanKey, QueryExecutor};
use crate::traverse::{IdEventSink, Traverser};
use crate::validx::{IndexEntry, ValueIndex};
use crate::xmltable::DocId;
use rx_xml::event::Event;
use rx_xml::name::NameDict;
use rx_xml::nodeid::NodeId;
use rx_xml::value::{encode_key, KeyType};
use rx_xpath::ast::{Axis, CmpOp, Expr, Operand, Path, Step};
use rx_xpath::containment::{classify, IndexMatch};
use rx_xpath::quickxscan::QuickXScan;
use rx_xpath::QueryTree;
use std::collections::{BTreeSet, HashMap};
use std::fmt;
use std::sync::Arc;

/// One query result: a node of a document with its string value.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryHit {
    /// Owning document.
    pub doc: DocId,
    /// The matched node (present for stored-data evaluation).
    pub node: Option<NodeId>,
    /// String value of the matched node.
    pub value: String,
}

/// A key range over encoded key values.
#[derive(Debug, Clone, PartialEq)]
pub struct KeyRange {
    /// Lower bound (bytes, inclusive?).
    pub lo: Option<(Vec<u8>, bool)>,
    /// Upper bound (bytes, inclusive?).
    pub hi: Option<(Vec<u8>, bool)>,
}

impl KeyRange {
    fn from_cmp(op: CmpOp, key: Vec<u8>) -> Option<KeyRange> {
        Some(match op {
            CmpOp::Eq => KeyRange {
                lo: Some((key.clone(), true)),
                hi: Some((key, true)),
            },
            CmpOp::Lt => KeyRange {
                lo: None,
                hi: Some((key, false)),
            },
            CmpOp::Le => KeyRange {
                lo: None,
                hi: Some((key, true)),
            },
            CmpOp::Gt => KeyRange {
                lo: Some((key, false)),
                hi: None,
            },
            CmpOp::Ge => KeyRange {
                lo: Some((key, true)),
                hi: None,
            },
            CmpOp::Ne => return None,
        })
    }
}

/// One index term of a plan: an index, the key range to scan, and how the
/// index path relates to the query's access path.
pub struct IndexTerm {
    /// The index to scan.
    pub index: Arc<ValueIndex>,
    /// Scan range.
    pub range: KeyRange,
    /// Exact vs containment (filtering) match.
    pub match_kind: IndexMatch,
    /// The access path this term covers (for explain output).
    pub access_path: String,
}

impl fmt::Debug for IndexTerm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "IndexTerm({} {:?} on {})",
            self.index.def.name, self.match_kind, self.access_path
        )
    }
}

/// How multiple terms combine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Combine {
    /// Conjunctive: ANDing.
    And,
    /// Disjunctive: ORing.
    Or,
}

/// Candidate granularity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Granularity {
    /// DocID lists (small documents).
    DocId,
    /// NodeID lists at the anchor node (large documents).
    NodeId,
}

/// A selected access plan.
pub enum AccessPlan {
    /// Evaluate by scanning every document with QuickXScan (the relational-
    /// scan analogue).
    FullScan,
    /// Index access: scan term ranges, combine candidate lists, verify when
    /// the combined list is not exact.
    Index {
        /// The terms.
        terms: Vec<IndexTerm>,
        /// AND vs OR combination.
        combine: Combine,
        /// Candidate granularity.
        granularity: Granularity,
        /// Depth of the anchor step (NodeID granularity only): candidates
        /// map to their ancestor at this depth.
        anchor_depth: usize,
        /// Is the combined candidate list exact (no re-evaluation needed to
        /// decide the indexed predicates)?
        exact: bool,
        /// Whether the full query must still run on candidates (non-indexed
        /// predicates, or result ≠ anchor, or inexact list).
        verify: bool,
    },
}

impl AccessPlan {
    /// Human-readable explain output.
    pub fn explain(&self) -> String {
        match self {
            AccessPlan::FullScan => "FULL SCAN (QuickXScan over every document)".to_string(),
            AccessPlan::Index {
                terms,
                combine,
                granularity,
                exact,
                verify,
                ..
            } => {
                let mut s = String::new();
                s.push_str(match granularity {
                    Granularity::DocId => "DocID",
                    Granularity::NodeId => "NodeID",
                });
                s.push_str(" list access");
                if terms.len() > 1 {
                    s.push_str(match combine {
                        Combine::And => " with ANDing",
                        Combine::Or => " with ORing",
                    });
                }
                s.push_str(if *exact { " (exact" } else { " (filtering" });
                s.push_str(if *verify {
                    ", re-evaluation)"
                } else {
                    ", no re-evaluation)"
                });
                for t in terms {
                    s.push_str(&format!(
                        "\n  index {} [{}] {:?} via {}",
                        t.index.def.name, t.index.def.path_text, t.match_kind, t.access_path
                    ));
                }
                s
            }
        }
    }
}

/// Execution counters for the E6 experiment.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct AccessStats {
    /// Index entries scanned.
    pub index_entries: u64,
    /// Candidate documents / nodes after combining.
    pub candidates: u64,
    /// Documents fully (re-)evaluated.
    pub docs_evaluated: u64,
    /// Heap records fetched during evaluation.
    pub records_fetched: u64,
}

// ---------------------------------------------------------------------------
// Planning
// ---------------------------------------------------------------------------

/// Strip predicates from steps `0..=idx` of `path` and append `tail`,
/// yielding the access path of a predicate operand.
fn access_path(path: &Path, idx: usize, tail: &Path) -> Path {
    let mut steps: Vec<Step> = path.steps[..=idx]
        .iter()
        .map(|s| Step {
            axis: s.axis,
            test: s.test.clone(),
            predicates: Vec::new(),
        })
        .collect();
    steps.extend(tail.steps.iter().cloned());
    Path {
        absolute: true,
        steps,
    }
}

/// Try to express one comparison as an index term against any of `indexes`.
fn term_for(
    indexes: &[Arc<ValueIndex>],
    full_path: &Path,
    op: CmpOp,
    literal: &str,
) -> Option<IndexTerm> {
    let mut best: Option<IndexTerm> = None;
    for idx in indexes {
        let m = classify(&idx.path, full_path);
        if m == IndexMatch::None {
            continue;
        }
        let Some(key) = encode_key(idx.def.key_type, literal) else {
            continue; // literal does not cast to the index key type
        };
        // String indexes can serve ordering comparisons only lexicographically,
        // which differs from numeric XPath semantics — restrict them to Eq.
        if idx.def.key_type == KeyType::String && op != CmpOp::Eq {
            continue;
        }
        let range = KeyRange::from_cmp(op, key)?;
        let term = IndexTerm {
            index: Arc::clone(idx),
            range,
            match_kind: m,
            access_path: full_path.to_string(),
        };
        // Prefer exact over filtering matches.
        let better = match (&best, m) {
            (None, _) => true,
            (Some(b), IndexMatch::Exact) if b.match_kind == IndexMatch::Filtering => true,
            _ => false,
        };
        if better {
            best = Some(term);
        }
    }
    best
}

/// Decompose a predicate expression into indexable comparison terms. Returns
/// `(terms, combine, fully_covered)`; `fully_covered` is false when any part
/// of the expression could not be turned into an index term (so verification
/// is mandatory).
fn decompose(
    expr: &Expr,
    indexes: &[Arc<ValueIndex>],
    path: &Path,
    anchor: usize,
) -> (Vec<IndexTerm>, Combine, bool) {
    match expr {
        Expr::And(a, b) => {
            let (mut ta, _, ca) = decompose(a, indexes, path, anchor);
            let (tb, _, cb) = decompose(b, indexes, path, anchor);
            ta.extend(tb);
            (ta, Combine::And, ca && cb)
        }
        Expr::Or(a, b) => {
            let (ta, _, ca) = decompose(a, indexes, path, anchor);
            let (tb, _, cb) = decompose(b, indexes, path, anchor);
            // ORing is only usable when BOTH sides are fully indexable;
            // otherwise the index list would miss qualifying candidates.
            if ca && cb && !ta.is_empty() && !tb.is_empty() {
                let mut t = ta;
                t.extend(tb);
                (t, Combine::Or, true)
            } else {
                (Vec::new(), Combine::Or, false)
            }
        }
        Expr::Cmp(op, lhs, rhs) => {
            let (p, op, lit) = match (lhs, rhs) {
                (Operand::Path(p), Operand::Literal(l)) => (p, *op, l.clone()),
                (Operand::Path(p), Operand::Number(n)) => {
                    (p, *op, rx_xml::value::format_double(*n))
                }
                (Operand::Literal(l), Operand::Path(p)) => (p, op.flip(), l.clone()),
                (Operand::Number(n), Operand::Path(p)) => {
                    (p, op.flip(), rx_xml::value::format_double(*n))
                }
                _ => return (Vec::new(), Combine::And, false),
            };
            if !p.is_simple() || p.absolute {
                return (Vec::new(), Combine::And, false);
            }
            let full = access_path(path, anchor, p);
            match term_for(indexes, &full, op, &lit) {
                Some(t) => (vec![t], Combine::And, true),
                None => (Vec::new(), Combine::And, false),
            }
        }
        _ => (Vec::new(), Combine::And, false),
    }
}

/// Choose an access plan for `path` against the indexes of `column`.
/// `prefer_nodeid` selects NodeID-granularity candidate lists (large
/// documents); it requires the anchor prefix to use only child axes so the
/// anchor depth is fixed.
pub fn plan(path: &Path, column: &XmlColumn, prefer_nodeid: bool) -> AccessPlan {
    let indexes = column.indexes();
    if indexes.is_empty() {
        return AccessPlan::FullScan;
    }
    // Find the anchor: the step carrying predicates (the last one wins when
    // several do; earlier ones then force verification).
    let Some(anchor) = path.steps.iter().rposition(|s| !s.predicates.is_empty()) else {
        return AccessPlan::FullScan;
    };
    let preds = &path.steps[anchor].predicates;
    let mut terms = Vec::new();
    let mut combine = Combine::And;
    let mut covered = true;
    for (i, p) in preds.iter().enumerate() {
        let (t, c, cov) = decompose(p, &indexes, path, anchor);
        if i == 0 {
            combine = c;
        } else if c != combine && !t.is_empty() {
            // Mixed and/or across predicate brackets: conjunction of
            // brackets; treat as AND and require verification.
            covered = false;
        }
        covered &= cov;
        terms.extend(t);
    }
    if terms.is_empty() {
        return AccessPlan::FullScan;
    }
    // Other steps with predicates force verification.
    let other_preds = path
        .steps
        .iter()
        .enumerate()
        .any(|(i, s)| i != anchor && !s.predicates.is_empty());
    covered &= !other_preds;

    // Exactness per Table 2: all exact → exact; under NodeID-level ANDing a
    // single exact term keeps the list exact; otherwise filtering.
    let all_exact = terms.iter().all(|t| t.match_kind == IndexMatch::Exact);
    let anchor_child_only = path.steps[..=anchor].iter().all(|s| s.axis == Axis::Child);
    let granularity = if prefer_nodeid && anchor_child_only {
        Granularity::NodeId
    } else {
        Granularity::DocId
    };
    let exact = match granularity {
        Granularity::NodeId => {
            all_exact
                || (combine == Combine::And
                    && terms.iter().any(|t| t.match_kind == IndexMatch::Exact))
        }
        Granularity::DocId => all_exact && terms.len() == 1,
    };
    // Does the query ask for exactly the anchor nodes?
    let result_is_anchor = anchor == path.steps.len() - 1;
    let verify = !exact || !covered || !result_is_anchor || granularity == Granularity::DocId;
    AccessPlan::Index {
        terms,
        combine,
        granularity,
        anchor_depth: anchor + 1,
        exact,
        verify,
    }
}

// ---------------------------------------------------------------------------
// Execution
// ---------------------------------------------------------------------------

/// Drive QuickXScan over one stored document.
struct ScanSink<'a, 'q, 'd> {
    scan: &'a mut QuickXScan<'q, 'd>,
}

impl IdEventSink for ScanSink<'_, '_, '_> {
    fn id_event(&mut self, id: &NodeId, ev: Event<'_>) -> Result<()> {
        use rx_xml::event::EventSink;
        self.scan.set_current_node(id.clone());
        self.scan.event(ev)?;
        Ok(())
    }
}

/// Evaluate `tree` over document `doc` of `column`, returning hits.
pub fn evaluate_document(
    column: &XmlColumn,
    dict: &NameDict,
    tree: &QueryTree,
    doc: DocId,
    stats: &mut AccessStats,
) -> Result<Vec<QueryHit>> {
    let mut scan = QuickXScan::new(tree, dict);
    let mut t = Traverser::new(column.xml_table(), doc);
    t.run(&mut ScanSink { scan: &mut scan })?;
    stats.docs_evaluated += 1;
    stats.records_fetched += t.stats.records_fetched;
    let items = scan.finish()?;
    Ok(items
        .into_iter()
        .map(|i| QueryHit {
            doc,
            node: i.node,
            value: i.value,
        })
        .collect())
}

/// Evaluate `tree` over each doc of `docs` in order. `skip_missing` applies
/// the locked path's semantics: a candidate gathered before its S lock was
/// granted may have been deleted by a transaction that committed in between
/// (the lock only guarantees we never see a *partial* document, not that the
/// document still exists), so `NotFound` skips the doc instead of failing.
fn evaluate_doc_list(
    column: &XmlColumn,
    dict: &NameDict,
    tree: &QueryTree,
    docs: &[DocId],
    skip_missing: bool,
    stats: &mut AccessStats,
) -> Result<Vec<QueryHit>> {
    let mut hits = Vec::new();
    for &doc in docs {
        match evaluate_document(column, dict, tree, doc, stats) {
            Ok(h) => hits.extend(h),
            Err(EngineError::NotFound { .. }) if skip_missing => continue,
            Err(e) => return Err(e),
        }
    }
    Ok(hits)
}

/// Fan document evaluation across the executor's lanes. Contiguous
/// partitions of the (document-ordered) candidate list keep per-partition
/// results in document order, so concatenating them in partition order
/// reproduces exactly the serial output; per-partition stats are summed.
/// The first error in partition (= document) order propagates, matching the
/// serial loop. Falls back to the serial loop when no executor is supplied
/// or the batch is too small to split.
fn evaluate_docs(
    exec: Option<&QueryExecutor>,
    column: &Arc<XmlColumn>,
    dict: &Arc<NameDict>,
    tree: &Arc<QueryTree>,
    docs: Vec<DocId>,
    skip_missing: bool,
    stats: &mut AccessStats,
) -> Result<Vec<QueryHit>> {
    let lanes = exec.map_or(1, QueryExecutor::workers);
    if lanes <= 1 || docs.len() <= 1 {
        return evaluate_doc_list(column, dict, tree, &docs, skip_missing, stats);
    }
    let exec = exec.expect("lanes > 1 implies an executor");
    let chunk = docs.len().div_ceil(lanes.min(docs.len()));
    type PartResult = Result<(Vec<QueryHit>, AccessStats)>;
    let mut tasks: Vec<Box<dyn FnOnce() -> PartResult + Send>> = Vec::new();
    // One shared candidate list; each lane gets a (start, len) window into
    // it instead of its own copy of the slice.
    let docs: Arc<[DocId]> = docs.into();
    for start in (0..docs.len()).step_by(chunk) {
        let len = chunk.min(docs.len() - start);
        let column = Arc::clone(column);
        let dict = Arc::clone(dict);
        let tree = Arc::clone(tree);
        let docs = Arc::clone(&docs);
        tasks.push(Box::new(move || {
            let mut stats = AccessStats::default();
            let part = &docs[start..start + len];
            let hits = evaluate_doc_list(&column, &dict, &tree, part, skip_missing, &mut stats)?;
            Ok((hits, stats))
        }));
    }
    let mut hits = Vec::new();
    for r in exec.run_batch(tasks) {
        let (h, s) = r?;
        hits.extend(h);
        stats.docs_evaluated += s.docs_evaluated;
        stats.records_fetched += s.records_fetched;
    }
    Ok(hits)
}

/// True when hit node `n` equals, descends from, or is an ancestor of one of
/// the `sorted` candidate anchors (all at exactly `anchor_depth` levels).
/// Ancestry on Dewey IDs is a byte-prefix test, so both directions reduce to
/// binary searches: a hit at or below the anchor depth has one possible
/// anchor (its prefix truncated to `anchor_depth`), and a shallower hit's
/// descendants form a contiguous byte-order run starting at its insertion
/// point.
fn anchor_listed(sorted: &[NodeId], n: &NodeId, anchor_depth: usize) -> bool {
    match ancestor_at_depth(n, anchor_depth) {
        Some(a) => sorted
            .binary_search_by(|c| c.as_bytes().cmp(a.as_bytes()))
            .is_ok(),
        None => {
            let i = sorted.partition_point(|c| c.as_bytes() < n.as_bytes());
            sorted.get(i).is_some_and(|c| n.is_ancestor_or_self(c))
        }
    }
}

/// Execute a plan. `table` supplies the document population for scans.
/// Compiles the tree once; use [`execute_tree`] to reuse a compiled tree
/// (e.g. from the plan cache) or to run in parallel.
pub fn execute(
    plan: &AccessPlan,
    table: &Arc<BaseTable>,
    column: &Arc<XmlColumn>,
    dict: &Arc<NameDict>,
    path: &Path,
) -> Result<(Vec<QueryHit>, AccessStats)> {
    let tree = Arc::new(QueryTree::compile(path)?);
    execute_tree(plan, table, column, dict, &tree, None)
}

/// Execute a plan with an already-compiled tree, optionally fanning
/// candidate-document evaluation across `exec`'s worker lanes.
pub fn execute_tree(
    plan: &AccessPlan,
    table: &Arc<BaseTable>,
    column: &Arc<XmlColumn>,
    dict: &Arc<NameDict>,
    tree: &Arc<QueryTree>,
    exec: Option<&QueryExecutor>,
) -> Result<(Vec<QueryHit>, AccessStats)> {
    let mut stats = AccessStats::default();
    match plan {
        AccessPlan::FullScan => {
            let docs = all_docids(table)?;
            let hits = evaluate_docs(exec, column, dict, tree, docs, false, &mut stats)?;
            Ok((hits, stats))
        }
        AccessPlan::Index {
            terms,
            combine,
            granularity,
            anchor_depth,
            verify,
            ..
        } => {
            // Scan every term's range.
            let mut term_entries: Vec<Vec<IndexEntry>> = Vec::with_capacity(terms.len());
            for t in terms {
                let entries = t.index.range(
                    t.range.lo.as_ref().map(|(k, i)| (k.as_slice(), *i)),
                    t.range.hi.as_ref().map(|(k, i)| (k.as_slice(), *i)),
                )?;
                stats.index_entries += entries.len() as u64;
                term_entries.push(entries);
            }
            match granularity {
                Granularity::DocId => {
                    let sets: Vec<BTreeSet<DocId>> = term_entries
                        .iter()
                        .map(|es| es.iter().map(|e| e.doc).collect())
                        .collect();
                    let docs: Vec<DocId> = combine_sets(sets, *combine).into_iter().collect();
                    stats.candidates = docs.len() as u64;
                    let hits = evaluate_docs(exec, column, dict, tree, docs, false, &mut stats)?;
                    Ok((hits, stats))
                }
                Granularity::NodeId => {
                    // Map each entry's node to its ancestor at the anchor
                    // depth (a Dewey prefix truncation), then combine.
                    let sets: Vec<BTreeSet<(DocId, NodeId)>> = term_entries
                        .iter()
                        .map(|es| {
                            es.iter()
                                .filter_map(|e| {
                                    ancestor_at_depth(&e.node, *anchor_depth).map(|a| (e.doc, a))
                                })
                                .collect()
                        })
                        .collect();
                    let nodes = combine_sets(sets, *combine);
                    stats.candidates = nodes.len() as u64;
                    if !verify {
                        // Exact list, result = anchor nodes: emit directly.
                        // `nodes` iterates in (doc, node) order, so one
                        // traverser per document serves all of its anchors —
                        // sharing the document-cache snapshot and the
                        // ceiling-probe memo, consecutive anchors that live
                        // in the same record cost one fetch, not one each.
                        let xml = column.xml_table();
                        let mut hits = Vec::with_capacity(nodes.len());
                        let mut cur: Option<(DocId, crate::traverse::Traverser<'_>)> = None;
                        for (doc, node) in nodes {
                            if cur.as_ref().map(|(d, _)| *d) != Some(doc) {
                                if let Some((_, done)) = cur.take() {
                                    stats.records_fetched += done.stats.records_fetched;
                                }
                                cur = Some((doc, crate::traverse::Traverser::new(xml, doc)));
                            }
                            let (_, t) = cur.as_mut().expect("traverser bound above");
                            let value = t.string_value(&node)?;
                            hits.push(QueryHit {
                                doc,
                                node: Some(node),
                                value,
                            });
                        }
                        if let Some((_, done)) = cur {
                            stats.records_fetched += done.stats.records_fetched;
                        }
                        return Ok((hits, stats));
                    }
                    // Verify per candidate *document* but only documents that
                    // have candidates; node-level pre-filtering already cut
                    // the verification set. Group anchors per document —
                    // `nodes` iterates in (doc, node) order, so each doc's
                    // anchor list arrives already byte-sorted and the filter
                    // below is a binary search instead of a rescan of the
                    // full candidate list per hit.
                    let mut anchors: HashMap<DocId, Vec<NodeId>> = HashMap::new();
                    let mut docs: Vec<DocId> = Vec::new();
                    for (d, n) in &nodes {
                        if docs.last() != Some(d) {
                            docs.push(*d);
                        }
                        anchors.entry(*d).or_default().push(n.clone());
                    }
                    let all = evaluate_docs(exec, column, dict, tree, docs, false, &mut stats)?;
                    // Keep only hits whose anchor candidate was listed.
                    let hits = all
                        .into_iter()
                        .filter(|h| match &h.node {
                            Some(n) => anchors
                                .get(&h.doc)
                                .is_some_and(|set| anchor_listed(set, n, *anchor_depth)),
                            None => true,
                        })
                        .collect();
                    Ok((hits, stats))
                }
            }
        }
    }
}

/// Compile + plan a query exactly once, through `cache` when one is given.
/// The cache key is `(table id, column, canonical path text, prefer_nodeid)`
/// so differently written but identical queries share an entry; a miss
/// compiles outside the cache lock and publishes the result.
pub fn prepare(
    cache: Option<&PlanCache>,
    table: &Arc<BaseTable>,
    column: &Arc<XmlColumn>,
    path: &Path,
    prefer_nodeid: bool,
) -> Result<Arc<CachedPlan>> {
    let key = cache.map(|_| PlanKey {
        table: table.def.id,
        column: column.name.clone(),
        path: path.to_string(),
        prefer_nodeid,
    });
    if let (Some(c), Some(k)) = (cache, &key) {
        if let Some(p) = c.get(k) {
            return Ok(p);
        }
    }
    let compiled = Arc::new(CachedPlan {
        tree: Arc::new(QueryTree::compile(path)?),
        plan: Arc::new(plan(path, column, prefer_nodeid)),
    });
    if let (Some(c), Some(k)) = (cache, key) {
        c.insert(k, Arc::clone(&compiled));
    }
    Ok(compiled)
}

/// Plan + execute under the §5.1 DocID-locking protocol: IS on the table,
/// then an S lock on every candidate document *before* it is evaluated —
/// "care must be taken also to prevent reading a partially inserted document
/// by using a lock": a value-index probe can surface entries of an
/// uncommitted insert, and the S lock makes the reader wait for (or abort
/// against) the inserting transaction instead of reading half a document.
pub fn run_query_locked(
    txn: &rx_storage::Txn,
    table: &Arc<BaseTable>,
    column: &Arc<XmlColumn>,
    dict: &Arc<NameDict>,
    path: &Path,
    prefer_nodeid: bool,
) -> Result<(Vec<QueryHit>, AccessStats)> {
    run_query_locked_with(None, None, txn, table, column, dict, path, prefer_nodeid)
}

/// [`run_query_locked`] with a worker pool and plan cache. Every candidate's
/// S lock is acquired, in document order, *before* evaluation fans out, so
/// the locking protocol is byte-for-byte the serial one; workers only read
/// documents the transaction already holds locks on. A lock timeout aborts
/// the whole query before any fan-out happens.
#[allow(clippy::too_many_arguments)]
pub fn run_query_locked_with(
    exec: Option<&QueryExecutor>,
    cache: Option<&PlanCache>,
    txn: &rx_storage::Txn,
    table: &Arc<BaseTable>,
    column: &Arc<XmlColumn>,
    dict: &Arc<NameDict>,
    path: &Path,
    prefer_nodeid: bool,
) -> Result<(Vec<QueryHit>, AccessStats)> {
    txn.lock(
        &rx_storage::LockName::Table(table.def.id),
        rx_storage::LockMode::IS,
    )?;
    let prepared = prepare(cache, table, column, path, prefer_nodeid)?;
    // Gather candidate documents first (index scans read only index pages),
    // then lock all of them, then evaluate.
    let mut stats = AccessStats::default();
    let docs: Vec<DocId> = match prepared.plan.as_ref() {
        AccessPlan::FullScan => all_docids(table)?,
        AccessPlan::Index { terms, combine, .. } => {
            let mut sets: Vec<BTreeSet<DocId>> = Vec::with_capacity(terms.len());
            for t in terms {
                let entries = t.index.range(
                    t.range.lo.as_ref().map(|(k, i)| (k.as_slice(), *i)),
                    t.range.hi.as_ref().map(|(k, i)| (k.as_slice(), *i)),
                )?;
                stats.index_entries += entries.len() as u64;
                sets.push(entries.iter().map(|e| e.doc).collect());
            }
            combine_sets(sets, *combine).into_iter().collect()
        }
    };
    stats.candidates = docs.len() as u64;
    for &doc in &docs {
        txn.lock(
            &rx_storage::LockName::Document {
                table: table.def.id,
                doc,
            },
            rx_storage::LockMode::S,
        )?;
    }
    let hits = evaluate_docs(exec, column, dict, &prepared.tree, docs, true, &mut stats)?;
    Ok((hits, stats))
}

/// Convenience: plan + execute in one call (serial, uncached).
pub fn run_query(
    table: &Arc<BaseTable>,
    column: &Arc<XmlColumn>,
    dict: &Arc<NameDict>,
    path: &Path,
    prefer_nodeid: bool,
) -> Result<(Vec<QueryHit>, AccessStats, String)> {
    run_query_with(None, None, table, column, dict, path, prefer_nodeid)
}

/// [`run_query`] with a worker pool and plan cache.
pub fn run_query_with(
    exec: Option<&QueryExecutor>,
    cache: Option<&PlanCache>,
    table: &Arc<BaseTable>,
    column: &Arc<XmlColumn>,
    dict: &Arc<NameDict>,
    path: &Path,
    prefer_nodeid: bool,
) -> Result<(Vec<QueryHit>, AccessStats, String)> {
    let prepared = prepare(cache, table, column, path, prefer_nodeid)?;
    let explain = prepared.plan.explain();
    let (hits, stats) = execute_tree(&prepared.plan, table, column, dict, &prepared.tree, exec)?;
    Ok((hits, stats, explain))
}

/// All DocIDs of a table, from the DocID index.
pub fn all_docids(table: &Arc<BaseTable>) -> Result<Vec<DocId>> {
    let mut out = Vec::new();
    table.docid_index().scan_all(|k, _| {
        if let Ok(b) = <[u8; 8]>::try_from(k) {
            out.push(u64::from_be_bytes(b));
        }
        true
    })?;
    Ok(out)
}

fn combine_sets<T: Ord + Clone>(mut sets: Vec<BTreeSet<T>>, combine: Combine) -> BTreeSet<T> {
    match combine {
        Combine::Or => {
            let mut out = BTreeSet::new();
            for s in sets {
                out.extend(s);
            }
            out
        }
        Combine::And => {
            if sets.is_empty() {
                return BTreeSet::new();
            }
            let first = sets.remove(0);
            sets.into_iter()
                .fold(first, |acc, s| acc.intersection(&s).cloned().collect())
        }
    }
}

/// The ancestor of `node` at exactly `depth` levels below the root, if the
/// node is at least that deep (Dewey prefix truncation).
pub fn ancestor_at_depth(node: &NodeId, depth: usize) -> Option<NodeId> {
    let levels = node.levels().ok()?;
    if levels.len() < depth {
        return None;
    }
    let mut id = NodeId::root();
    for rel in &levels[..depth] {
        id = id.child(rel);
    }
    Some(id)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::db::{ColValue, ColumnKind, Database};
    use rx_xpath::XPathParser;

    fn catalog_doc(id: u32, price: f64, discount: f64) -> String {
        format!(
            "<Catalog><Categories><Product><ProductName>P{id}</ProductName>\
             <RegPrice>{price}</RegPrice><Discount>{discount}</Discount>\
             </Product></Categories></Catalog>"
        )
    }

    fn setup() -> (Arc<Database>, Arc<BaseTable>) {
        let db = Database::create_in_memory().unwrap();
        let t = db
            .create_table("products", &[("doc", ColumnKind::Xml)])
            .unwrap();
        db.create_value_index(
            "products",
            "price_idx",
            "doc",
            "/Catalog/Categories/Product/RegPrice",
            KeyType::Double,
        )
        .unwrap();
        db.create_value_index("products", "disc_idx", "doc", "//Discount", KeyType::Double)
            .unwrap();
        for i in 0..20u32 {
            let price = 10.0 + f64::from(i) * 20.0; // 10..390
            let discount = f64::from(i % 4) * 0.1; // 0, .1, .2, .3
            db.insert_row(&t, &[ColValue::Xml(catalog_doc(i, price, discount))])
                .unwrap();
        }
        (db, t)
    }

    fn q(s: &str) -> Path {
        XPathParser::new().parse(s).unwrap()
    }

    #[test]
    fn table2_case1_docid_list() {
        // Query: /Catalog/Categories/Product[RegPrice > 100]
        // Index: /Catalog/Categories/Product/RegPrice as double → exact.
        let (db, t) = setup();
        let col = t.xml_column("doc").unwrap();
        let path = q("/Catalog/Categories/Product[RegPrice > 100]");
        let plan = plan(&path, col, false);
        let explain = plan.explain();
        assert!(explain.contains("DocID list access"), "{explain}");
        assert!(explain.contains("Exact"), "{explain}");
        let (hits, stats) = execute(&plan, &t, col, db.dict(), &path).unwrap();
        // Prices 110..390 → 15 products.
        assert_eq!(hits.len(), 15);
        assert_eq!(stats.candidates, 15);
        // Only candidate docs were evaluated (vs 20 for a scan).
        assert_eq!(stats.docs_evaluated, 15);
    }

    #[test]
    fn table2_case2_filtering() {
        // Query predicate on Discount; index //Discount contains the access
        // path → filtering.
        let (db, t) = setup();
        let col = t.xml_column("doc").unwrap();
        let path = q("/Catalog/Categories/Product[Discount > 0.15]");
        let plan = plan(&path, col, false);
        let explain = plan.explain();
        assert!(explain.contains("Filtering"), "{explain}");
        let (hits, _) = execute(&plan, &t, col, db.dict(), &path).unwrap();
        // Discount 0.2 or 0.3 → i%4 in {2,3} → 10 products.
        assert_eq!(hits.len(), 10);
    }

    #[test]
    fn table2_case3_anding() {
        let (db, t) = setup();
        let col = t.xml_column("doc").unwrap();
        let path = q("/Catalog/Categories/Product[RegPrice > 100 and Discount > 0.15]");
        let plan = plan(&path, col, false);
        let explain = plan.explain();
        assert!(explain.contains("ANDing"), "{explain}");
        let (hits, stats) = execute(&plan, &t, col, db.dict(), &path).unwrap();
        let scan_hits = {
            let (h, _) = execute(&AccessPlan::FullScan, &t, col, db.dict(), &path).unwrap();
            h
        };
        assert_eq!(hits.len(), scan_hits.len());
        assert!(stats.candidates <= 15);
        assert!(!hits.is_empty());
    }

    #[test]
    fn oring() {
        let (db, t) = setup();
        let col = t.xml_column("doc").unwrap();
        let path = q("/Catalog/Categories/Product[RegPrice < 50 or Discount > 0.25]");
        let plan = plan(&path, col, false);
        assert!(plan.explain().contains("ORing"), "{}", plan.explain());
        let (hits, _) = execute(&plan, &t, col, db.dict(), &path).unwrap();
        let (scan_hits, _) = execute(&AccessPlan::FullScan, &t, col, db.dict(), &path).unwrap();
        assert_eq!(hits.len(), scan_hits.len());
    }

    #[test]
    fn nodeid_granularity_exact_skips_reevaluation() {
        let (db, t) = setup();
        let col = t.xml_column("doc").unwrap();
        let path = q("/Catalog/Categories/Product[RegPrice = 110]");
        let plan = plan(&path, col, true);
        match &plan {
            AccessPlan::Index {
                granularity,
                verify,
                exact,
                ..
            } => {
                assert_eq!(*granularity, Granularity::NodeId);
                assert!(*exact);
                assert!(!*verify, "exact NodeID list needs no re-evaluation");
            }
            AccessPlan::FullScan => panic!("expected index plan"),
        }
        let (hits, stats) = execute(&plan, &t, col, db.dict(), &path).unwrap();
        assert_eq!(hits.len(), 1);
        assert_eq!(stats.docs_evaluated, 0, "no document re-evaluation");
        assert!(hits[0].value.contains("P5"));
    }

    #[test]
    fn index_plans_agree_with_scan() {
        let (db, t) = setup();
        let col = t.xml_column("doc").unwrap();
        let queries = [
            "/Catalog/Categories/Product[RegPrice > 100]",
            "/Catalog/Categories/Product[RegPrice <= 110]",
            "/Catalog/Categories/Product[RegPrice = 130]/ProductName",
            "/Catalog/Categories/Product[Discount > 0.05 and RegPrice < 200]",
            "/Catalog/Categories/Product[RegPrice >= 350 or Discount = 0.3]",
        ];
        for qs in queries {
            let path = q(qs);
            for prefer_nodeid in [false, true] {
                let p = plan(&path, col, prefer_nodeid);
                let (mut hits, _) = execute(&p, &t, col, db.dict(), &path).unwrap();
                let (mut scan_hits, _) =
                    execute(&AccessPlan::FullScan, &t, col, db.dict(), &path).unwrap();
                let key = |h: &QueryHit| (h.doc, h.node.clone().map(|n| n.as_bytes().to_vec()));
                hits.sort_by_key(key);
                scan_hits.sort_by_key(key);
                assert_eq!(hits, scan_hits, "query {qs} nodeid={prefer_nodeid}");
            }
        }
    }

    #[test]
    fn unindexable_queries_fall_back_to_scan() {
        let (_db, t) = setup();
        let col = t.xml_column("doc").unwrap();
        // No predicate at all.
        assert!(matches!(
            plan(&q("/Catalog/Categories/Product"), col, false),
            AccessPlan::FullScan
        ));
        // Predicate on an unindexed path.
        assert!(matches!(
            plan(
                &q("/Catalog/Categories/Product[ProductName = 'P3']"),
                col,
                false
            ),
            AccessPlan::FullScan
        ));
        // != cannot use an index.
        assert!(matches!(
            plan(
                &q("/Catalog/Categories/Product[RegPrice != 100]"),
                col,
                false
            ),
            AccessPlan::FullScan
        ));
    }

    #[test]
    fn ancestor_truncation() {
        let n = NodeId::from_bytes(&[0x02, 0x04, 0x03, 0x02, 0x06]).unwrap();
        assert_eq!(ancestor_at_depth(&n, 1).unwrap().as_bytes(), &[0x02][..]);
        assert_eq!(
            ancestor_at_depth(&n, 2).unwrap().as_bytes(),
            &[0x02, 0x04][..]
        );
        assert_eq!(
            ancestor_at_depth(&n, 3).unwrap().as_bytes(),
            &[0x02, 0x04, 0x03, 0x02][..]
        );
        assert!(ancestor_at_depth(&n, 5).is_none());
    }

    #[test]
    fn parallel_execution_matches_serial() {
        let (db, t) = setup();
        let col = t.xml_column("doc").unwrap();
        let exec = QueryExecutor::new(4);
        let queries = [
            "/Catalog/Categories/Product",
            "/Catalog/Categories/Product[RegPrice > 100]",
            "/Catalog/Categories/Product[Discount > 0.15]",
            "/Catalog/Categories/Product[RegPrice > 100 and Discount > 0.15]",
        ];
        for qs in queries {
            let path = q(qs);
            for prefer_nodeid in [false, true] {
                let p = plan(&path, col, prefer_nodeid);
                let tree = Arc::new(QueryTree::compile(&path).unwrap());
                let (serial, sstats) = execute_tree(&p, &t, col, db.dict(), &tree, None).unwrap();
                let (par, pstats) =
                    execute_tree(&p, &t, col, db.dict(), &tree, Some(&exec)).unwrap();
                // Same hits in the same (document) order, same work counters.
                assert_eq!(par, serial, "query {qs} nodeid={prefer_nodeid}");
                assert_eq!(pstats, sstats, "query {qs} nodeid={prefer_nodeid}");
            }
        }
        assert!(exec.parallel_queries() > 0);
    }

    #[test]
    fn parallel_evaluation_skips_deleted_docs_only_when_asked() {
        let (db, t) = setup();
        let col = t.xml_column("doc").unwrap();
        let exec = QueryExecutor::new(4);
        let path = q("/Catalog/Categories/Product/ProductName");
        let tree = Arc::new(QueryTree::compile(&path).unwrap());
        let mut docs = all_docids(&t).unwrap();
        let victim = docs[docs.len() / 2];
        assert!(db.delete_row(&t, victim).unwrap());
        // The stale candidate list still names the deleted doc (the locked
        // path hits this when a delete commits between gather and lock).
        let err = evaluate_docs(
            Some(&exec),
            col,
            db.dict(),
            &tree,
            docs.clone(),
            false,
            &mut AccessStats::default(),
        )
        .unwrap_err();
        assert!(matches!(err, EngineError::NotFound { .. }));
        let mut stats = AccessStats::default();
        let hits = evaluate_docs(
            Some(&exec),
            col,
            db.dict(),
            &tree,
            docs.clone(),
            true,
            &mut stats,
        )
        .unwrap();
        assert_eq!(hits.len(), 19);
        assert!(hits.iter().all(|h| h.doc != victim));
        assert_eq!(stats.docs_evaluated, 19);
        // Serial agrees.
        docs.retain(|&d| d != victim);
        let mut serial_stats = AccessStats::default();
        let serial =
            evaluate_docs(None, col, db.dict(), &tree, docs, false, &mut serial_stats).unwrap();
        assert_eq!(hits, serial);
        assert_eq!(stats.docs_evaluated, serial_stats.docs_evaluated);
    }
}

#[cfg(test)]
mod exactness_tests {
    use super::*;
    use crate::db::{ColValue, ColumnKind, Database};
    use rx_xml::value::KeyType;
    use rx_xpath::XPathParser;

    /// Table 2's exactness discussion: "If all the indexes match exactly with
    /// the predicates, the result DocID/NodeID list is exact. If one of them
    /// is exact match, while the others are containment, NodeID level ANDing
    /// will result in an exact list. Otherwise, the result list will not be
    /// exact but filtering."
    #[test]
    fn mixed_exact_and_containment_nodeid_anding_is_exact() {
        let db = Database::create_in_memory().unwrap();
        let t = db.create_table("c", &[("doc", ColumnKind::Xml)]).unwrap();
        // Exact index for RegPrice, containment (//) index for Discount.
        db.create_value_index(
            "c",
            "p",
            "doc",
            "/Catalog/Product/RegPrice",
            KeyType::Double,
        )
        .unwrap();
        db.create_value_index("c", "d", "doc", "//Discount", KeyType::Double)
            .unwrap();
        db.insert_row(
            &t,
            &[ColValue::Xml(
                "<Catalog><Product><RegPrice>100</RegPrice>\
                 <Discount>0.2</Discount></Product></Catalog>"
                    .into(),
            )],
        )
        .unwrap();
        let col = t.xml_column("doc").unwrap();
        let path = XPathParser::new()
            .parse("/Catalog/Product[RegPrice > 50 and Discount > 0.1]")
            .unwrap();
        // NodeID granularity: exact despite the containment term.
        match plan(&path, col, true) {
            AccessPlan::Index {
                granularity, exact, ..
            } => {
                assert_eq!(granularity, Granularity::NodeId);
                assert!(exact, "one exact term keeps NodeID ANDing exact");
            }
            AccessPlan::FullScan => panic!("expected an index plan"),
        }
        // DocID granularity with two terms: not exact (re-evaluation needed).
        match plan(&path, col, false) {
            AccessPlan::Index { exact, verify, .. } => {
                assert!(!exact);
                assert!(verify);
            }
            AccessPlan::FullScan => panic!("expected an index plan"),
        }
        // Two containment-only terms at NodeID level: filtering.
        let path = XPathParser::new()
            .parse("/Catalog/Product[Discount > 0.1 and Discount < 0.5]")
            .unwrap();
        match plan(&path, col, true) {
            AccessPlan::Index { exact, .. } => {
                assert!(!exact, "containment-only ANDing is a filter");
            }
            AccessPlan::FullScan => panic!("expected an index plan"),
        }
    }
}
