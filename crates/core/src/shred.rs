//! Baseline: one-node-per-row relational shredding.
//!
//! §3.1 analyzes "the relational representation of one row per node (or
//! edge) \[28\]" (Tian, DeWitt, Chen, Zhang): a tree of k nodes costs
//! `k·(n+b+v)` bytes of storage with `k` index entries, and traversal pays
//! one index-driven fetch ("relational join") per node — time `(k-1)·t` —
//! whereas the packed scheme pays `k·t/p`. This module implements that
//! storage model faithfully on the *same* heap/B+tree infrastructure so the
//! E1/E2/E3 comparisons isolate the representation, not the substrate.
//!
//! Each node is one heap row `(DocID, NodeID, kind, name, value)` with one
//! `(DocID, NodeID) → RID` index entry. Node IDs are the same Dewey IDs the
//! native engine assigns, so results are directly comparable.

use crate::error::{EngineError, Result};
use crate::xmltable::{nodeid_key, DocId};
use rx_storage::codec::{Dec, Enc};
use rx_storage::{BTree, HeapTable, Rid, TableSpace};
use rx_xml::event::{Event, EventSink};
use rx_xml::name::QNameId;
use rx_xml::nodeid::{NodeId, RelId};
use rx_xml::value::TypeAnn;
use std::sync::Arc;

/// Anchor of the per-node index within the shredded table's space.
pub const SHRED_INDEX_ANCHOR: usize = 2;

/// Node kinds stored in shredded rows.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum ShredKind {
    /// Element.
    Element = 1,
    /// Attribute.
    Attribute = 2,
    /// Text.
    Text = 3,
    /// Comment.
    Comment = 4,
    /// Processing instruction.
    Pi = 5,
}

/// One decoded shredded node row.
#[derive(Debug, Clone, PartialEq)]
pub struct ShredNode {
    /// Owning document.
    pub doc: DocId,
    /// Absolute Dewey node ID.
    pub node: NodeId,
    /// Kind.
    pub kind: ShredKind,
    /// Name (elements, attributes, PI targets); 0 otherwise.
    pub name: QNameId,
    /// Value (texts, attributes, comments, PI data); empty for elements.
    pub value: String,
}

fn encode_node(n: &ShredNode) -> Vec<u8> {
    let mut e = Enc::with_capacity(24 + n.value.len());
    e.u64(n.doc);
    e.bytes(n.node.as_bytes());
    e.u8(n.kind as u8);
    e.varint(u64::from(n.name));
    e.str(&n.value);
    e.into_bytes()
}

fn decode_node(rec: &[u8]) -> Result<ShredNode> {
    let mut d = Dec::new(rec);
    let doc = d.u64()?;
    let node = NodeId::from_bytes_unchecked(d.bytes()?.to_vec());
    let kind = match d.u8()? {
        1 => ShredKind::Element,
        2 => ShredKind::Attribute,
        3 => ShredKind::Text,
        4 => ShredKind::Comment,
        5 => ShredKind::Pi,
        other => return Err(EngineError::Record(format!("bad shred kind byte {other}"))),
    };
    let name = d.varint()? as QNameId;
    let value = d.str()?.to_string();
    Ok(ShredNode {
        doc,
        node,
        kind,
        name,
        value,
    })
}

/// The shredded store: node-row heap + per-node index.
pub struct ShreddedStore {
    heap: Arc<HeapTable>,
    index: Arc<BTree>,
}

impl ShreddedStore {
    /// Create in `space`.
    pub fn create(space: Arc<TableSpace>) -> Result<ShreddedStore> {
        let heap = HeapTable::create(space.clone())?;
        let index = BTree::create(space, SHRED_INDEX_ANCHOR)?;
        Ok(ShreddedStore { heap, index })
    }

    /// Insert one document from an event stream, assigning Dewey IDs exactly
    /// like the native packer.
    pub fn insert_document(
        &self,
        doc: DocId,
        drive: impl FnOnce(&mut dyn EventSink) -> Result<()>,
    ) -> Result<u64> {
        struct Sink<'a> {
            store: &'a ShreddedStore,
            doc: DocId,
            stack: Vec<(NodeId, Option<RelId>)>,
            count: u64,
            err: Option<EngineError>,
        }
        impl Sink<'_> {
            fn alloc(&mut self) -> NodeId {
                let (abs, next) = self.stack.last_mut().expect("root frame");
                let rel = match next {
                    None => RelId::first(),
                    Some(prev) => prev.next_sibling(),
                };
                *next = Some(rel.clone());
                abs.child(&rel)
            }
            fn put(&mut self, kind: ShredKind, name: QNameId, value: &str, id: NodeId) {
                let row = encode_node(&ShredNode {
                    doc: self.doc,
                    node: id.clone(),
                    kind,
                    name,
                    value: value.to_string(),
                });
                let r = (|| -> Result<()> {
                    let rid = self.store.heap.insert(&row)?;
                    self.store
                        .index
                        .insert(&nodeid_key(self.doc, &id), rid.to_u64())?;
                    Ok(())
                })();
                if let Err(e) = r {
                    self.err.get_or_insert(e);
                }
                self.count += 1;
            }
        }
        impl EventSink for Sink<'_> {
            fn event(&mut self, ev: Event<'_>) -> rx_xml::Result<()> {
                match ev {
                    Event::StartDocument | Event::EndDocument | Event::NamespaceDecl { .. } => {}
                    Event::StartElement { name } => {
                        let id = self.alloc();
                        self.put(ShredKind::Element, name, "", id.clone());
                        self.stack.push((id, None));
                    }
                    Event::EndElement => {
                        self.stack.pop();
                    }
                    Event::Attribute { name, value, .. } => {
                        let id = self.alloc();
                        self.put(ShredKind::Attribute, name, value, id);
                    }
                    Event::Text { value, .. } => {
                        let id = self.alloc();
                        self.put(ShredKind::Text, 0, value, id);
                    }
                    Event::Comment { value } => {
                        let id = self.alloc();
                        self.put(ShredKind::Comment, 0, value, id);
                    }
                    Event::Pi { target, data } => {
                        let id = self.alloc();
                        self.put(ShredKind::Pi, target, data, id);
                    }
                }
                Ok(())
            }
        }
        let mut sink = Sink {
            store: self,
            doc,
            stack: vec![(NodeId::root(), None)],
            count: 0,
            err: None,
        };
        drive(&mut sink)?;
        if let Some(e) = sink.err {
            return Err(e);
        }
        Ok(sink.count)
    }

    /// Traverse a document in order, emitting events. Every node costs one
    /// index step plus one heap fetch — the per-node "join" of the paper's
    /// analysis. Returns the number of heap fetches performed.
    pub fn traverse(&self, doc: DocId, sink: &mut dyn EventSink) -> Result<u64> {
        // Collect the document's index entries in node-ID order.
        let mut entries: Vec<(NodeId, Rid)> = Vec::new();
        self.index.scan_prefix(&doc.to_be_bytes(), |k, v| {
            let node = NodeId::from_bytes_unchecked(k[8..].to_vec());
            entries.push((node, Rid::from_u64(v)));
            true
        })?;
        sink.event(Event::StartDocument)?;
        let mut open: Vec<NodeId> = Vec::new();
        let mut fetches = 0u64;
        for (node, rid) in entries {
            // Close elements that do not contain this node.
            while let Some(top) = open.last() {
                if top.is_ancestor(&node) {
                    break;
                }
                sink.event(Event::EndElement)?;
                open.pop();
            }
            let rec = self.heap.fetch(rid)?; // the per-node fetch
            fetches += 1;
            let n = decode_node(&rec)?;
            match n.kind {
                ShredKind::Element => {
                    sink.event(Event::StartElement { name: n.name })?;
                    open.push(node);
                }
                ShredKind::Attribute => sink.event(Event::Attribute {
                    name: n.name,
                    value: &n.value,
                    ann: TypeAnn::Untyped,
                })?,
                ShredKind::Text => sink.event(Event::Text {
                    value: &n.value,
                    ann: TypeAnn::Untyped,
                })?,
                ShredKind::Comment => sink.event(Event::Comment { value: &n.value })?,
                ShredKind::Pi => sink.event(Event::Pi {
                    target: n.name,
                    data: &n.value,
                })?,
            }
        }
        while open.pop().is_some() {
            sink.event(Event::EndElement)?;
        }
        sink.event(Event::EndDocument)?;
        Ok(fetches)
    }

    /// Update one node's value in place — touches exactly one small row
    /// (`n` bytes), the shredded scheme's strength in the §3.1 analysis.
    /// Returns the bytes written.
    pub fn update_value(&self, doc: DocId, node: &NodeId, value: &str) -> Result<u64> {
        let key = nodeid_key(doc, node);
        let Some(rid) = self.index.search(&key)? else {
            return Err(EngineError::NotFound {
                kind: "node",
                name: format!("docid {doc} node {node}"),
            });
        };
        let rid = Rid::from_u64(rid);
        let rec = self.heap.fetch(rid)?;
        let mut n = decode_node(&rec)?;
        n.value = value.to_string();
        let row = encode_node(&n);
        let new_rid = self.heap.update(rid, &row)?;
        if new_rid != rid {
            self.index.insert(&key, new_rid.to_u64())?;
        }
        Ok(row.len() as u64)
    }

    /// Storage statistics: (heap pages, rows, row bytes, index entries,
    /// index pages).
    pub fn stats(&self) -> Result<(u64, u64, u64, u64, u64)> {
        let h = self.heap.stats()?;
        Ok((
            h.pages,
            h.records,
            h.record_bytes,
            self.index.len()?,
            self.index.page_count()?,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rx_storage::{BufferPool, MemBackend};
    use rx_xml::name::NameDict;
    use rx_xml::{Parser, Serializer};

    fn store() -> (ShreddedStore, NameDict) {
        let pool = BufferPool::new(2048);
        let space = TableSpace::create(pool, 30, Arc::new(MemBackend::new())).unwrap();
        (ShreddedStore::create(space).unwrap(), NameDict::new())
    }

    fn insert(s: &ShreddedStore, dict: &NameDict, doc: DocId, text: &str) -> u64 {
        s.insert_document(doc, |sink| {
            Parser::new(dict).parse(text, sink).map_err(Into::into)
        })
        .unwrap()
    }

    #[test]
    fn roundtrip() {
        let (s, dict) = store();
        let doc = r#"<a x="1"><b>hi</b><c/><!--n--><?p q?></a>"#;
        let n = insert(&s, &dict, 1, doc);
        assert_eq!(n, 7); // a, @x, b, text, c, comment, pi
        let mut ser = Serializer::new(&dict);
        let fetches = s.traverse(1, &mut ser).unwrap();
        assert_eq!(ser.finish(), doc);
        assert_eq!(fetches, 7, "one fetch per node");
    }

    #[test]
    fn one_index_entry_per_node() {
        let (s, dict) = store();
        let doc = format!(
            "<r>{}</r>",
            (0..50).map(|i| format!("<p>{i}</p>")).collect::<String>()
        );
        let n = insert(&s, &dict, 1, &doc);
        let (_, rows, _, entries, _) = s.stats().unwrap();
        assert_eq!(rows, n);
        assert_eq!(entries, n, "shredding stores k index entries for k nodes");
    }

    #[test]
    fn single_node_update_touches_one_row() {
        let (s, dict) = store();
        insert(&s, &dict, 1, "<a><b>old-value</b></a>");
        // b's text node: 02 02 02.
        let t = NodeId::from_bytes(&[0x02, 0x02, 0x02]).unwrap();
        let bytes = s.update_value(1, &t, "new-value").unwrap();
        assert!(bytes < 50, "touches only the one row, got {bytes}");
        let mut ser = Serializer::new(&dict);
        s.traverse(1, &mut ser).unwrap();
        assert_eq!(ser.finish(), "<a><b>new-value</b></a>");
    }

    #[test]
    fn multiple_documents() {
        let (s, dict) = store();
        for d in 1..=3u64 {
            insert(&s, &dict, d, &format!("<v>{d}</v>"));
        }
        for d in 1..=3u64 {
            let mut ser = Serializer::new(&dict);
            s.traverse(d, &mut ser).unwrap();
            assert_eq!(ser.finish(), format!("<v>{d}</v>"));
        }
    }
}
