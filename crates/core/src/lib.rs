//! # rx-engine — System R/X: a native XML database engine on relational
//! infrastructure
//!
//! A from-scratch reproduction of *"Building a Scalable Native XML Database
//! Engine on Infrastructure for a Relational Database"* (Guogen Zhang, 2005).
//! The engine stores XML natively — tree-packed records with Dewey node IDs
//! on relational heap pages, located through a NodeID B+tree — and queries it
//! with the QuickXScan streaming XPath algorithm plus XPath value indexes.
//!
//! Module map (paper section in parentheses):
//!
//! * [`pack`] — tree packing into records with proxies and interval index
//!   entries (§3.1, Fig. 3);
//! * [`xmltable`] — the internal XML table + NodeID index (§3.1, Fig. 2);
//! * [`traverse`] — stored-data traversal and node fetch (§3.4);
//! * [`validx`] — XPath value indexes with QuickXScan key generation (§3.3);
//! * [`update`] — sub-document updates with stable Dewey IDs (§3.1);
//! * [`access`] — DocID/NodeID list, filtering, ANDing/ORing access methods
//!   and access-path selection (§4.3, Table 2);
//! * [`construct`] — constructor functions with tagging templates and XMLAGG
//!   linked-list quicksort (§4.1, Fig. 5);
//! * [`runtime`] — virtual-SAX runtime, XML handles, sequences (§4.4, Fig. 8);
//! * [`conc`] / [`mvcc`] — DocID locking, node-prefix multi-granularity
//!   locking, and document multiversioning (§5);
//! * [`executor`] — the shared query worker pool and plan cache;
//! * [`doccache`] — the versioned hot-document record cache above the
//!   buffer pool;
//! * [`db`] — the database façade (tables, columns, schemas, recovery);
//! * [`sqlxml`] — the SQL/XML statement layer (§2);
//! * [`shred`] / [`lob`] — the one-node-per-row and LOB storage **baselines**
//!   the paper's §3.1 analysis compares against.

#![warn(missing_docs)]

pub mod access;
pub mod conc;
pub mod construct;
pub mod db;
pub mod doccache;
pub mod error;
pub mod executor;
pub mod fulltext;
pub mod lob;
pub mod mvcc;
pub mod pack;
pub mod runtime;
pub mod shred;
pub mod sqlxml;
pub mod traverse;
pub mod update;
pub mod validx;
pub mod xmltable;
pub mod xquery;

pub use access::{AccessPlan, AccessStats, QueryHit};
pub use db::{
    BaseTable, ColValue, ColumnKind, Database, DbConfig, DbStats, Row, Storage, XmlColumn,
};
pub use doccache::{CachedDoc, DocCache, LoadedRecord};
pub use error::{EngineError, Result};
pub use executor::{PlanCache, QueryExecutor};
pub use sqlxml::{Output, Session};
pub use xmltable::{DocId, XmlTable};
