//! XPath value indexes (§3.3).
//!
//! "Users can create XPath value indexes on frequently searched elements or
//! attributes by specifying a simple XPath expression without predicates,
//! such as /catalog//productname, and a data type for the key values … A
//! value index entry contains (keyval, DocID, NodeID, RID), which can map a
//! key value to a logical ID (DocID, NodeID) or physical ID (RID) in the XML
//! table, or both. A simplified version of our streaming XPath algorithm
//! (QuickXScan) is used to evaluate the XPath on each record [here: on the
//! insertion event stream] … there may be zero, one or more index entries per
//! record."
//!
//! Entries live in the same B+tree infrastructure as relational indexes.
//! Keys are `escape(keyval) ++ DocID(BE) ++ NodeID`; the RID is the tree
//! value — so one index serves DocID-list, NodeID-list and RID access.
//! Values that fail to cast to the declared key type simply produce no entry
//! (§3.3's zero-entries case) — the paper's indexes are not "complete copies
//! of the base data".

use crate::error::{EngineError, Result};
use crate::pack::NodeObserver;
use crate::xmltable::{DocId, XmlTable};
use rx_storage::wal::LogRecord;
use rx_storage::{BTree, Rid, TableSpace, Txn};
use rx_xml::event::{Event, EventSink};
use rx_xml::name::NameDict;
use rx_xml::nodeid::NodeId;
use rx_xml::value::{encode_key, KeyType};
use rx_xpath::quickxscan::{QuickXScan, ResultItem};
use rx_xpath::{Path, QueryTree, XPathParser};
use std::sync::Arc;

/// Anchor slot in the index's table space where the B+tree root lives.
pub const VALUE_INDEX_ANCHOR: usize = 0;

/// Escape-encode a variable-length key value so that appending the
/// fixed-width suffix preserves keyval-major ordering: `0x00` bytes become
/// `0x00 0xFF` and the value terminates with `0x00 0x00`.
pub fn escape_keyval(v: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(v.len() + 2);
    for &b in v {
        if b == 0x00 {
            out.push(0x00);
            out.push(0xFF);
        } else {
            out.push(b);
        }
    }
    out.push(0x00);
    out.push(0x00);
    out
}

/// The upper bound (exclusive) of all escaped keys beginning with keyval `v`:
/// `escape(v)` with the terminator bumped past any continuation.
pub fn escape_keyval_upper(v: &[u8]) -> Vec<u8> {
    let mut out = escape_keyval(v);
    let n = out.len();
    out[n - 1] = 0x01; // 0x00 0x01 sorts above the terminator 0x00 0x00 and
                       // below any escaped continuation byte 0x00 0xFF.
    out
}

/// A fully decoded value-index entry.
#[derive(Debug, Clone, PartialEq)]
pub struct IndexEntry {
    /// The (unescaped, encoded) key value bytes.
    pub keyval: Vec<u8>,
    /// Owning document.
    pub doc: DocId,
    /// Logical node ID of the indexed node.
    pub node: NodeId,
    /// Physical record containing the node.
    pub rid: Rid,
}

fn encode_entry_key(keyval: &[u8], doc: DocId, node: &NodeId) -> Vec<u8> {
    let mut k = escape_keyval(keyval);
    k.extend_from_slice(&doc.to_be_bytes());
    k.extend_from_slice(node.as_bytes());
    k
}

fn decode_entry_key(key: &[u8]) -> Result<(Vec<u8>, DocId, NodeId)> {
    // Un-escape up to the 0x00 0x00 terminator.
    let mut keyval = Vec::new();
    let mut i = 0usize;
    loop {
        let b = *key
            .get(i)
            .ok_or_else(|| EngineError::Record("truncated value-index key".into()))?;
        if b == 0x00 {
            let n = *key
                .get(i + 1)
                .ok_or_else(|| EngineError::Record("truncated escape in index key".into()))?;
            i += 2;
            match n {
                0x00 => break,
                0xFF => keyval.push(0x00),
                other => {
                    return Err(EngineError::Record(format!(
                        "bad escape byte {other:#04x} in index key"
                    )))
                }
            }
        } else {
            keyval.push(b);
            i += 1;
        }
    }
    let doc_bytes = key
        .get(i..i + 8)
        .ok_or_else(|| EngineError::Record("index key missing DocID".into()))?;
    let doc = DocId::from_be_bytes(doc_bytes.try_into().unwrap());
    let node = NodeId::from_bytes_unchecked(key[i + 8..].to_vec());
    Ok((keyval, doc, node))
}

/// Definition of a value index (persisted in the catalog).
#[derive(Debug, Clone, PartialEq)]
pub struct ValueIndexDef {
    /// Index name.
    pub name: String,
    /// Source text of the index path (a simple path, §3.3).
    pub path_text: String,
    /// Declared key type.
    pub key_type: KeyType,
    /// Table space holding the B+tree.
    pub space_id: u32,
}

/// A live XPath value index.
pub struct ValueIndex {
    /// Persistent definition.
    pub def: ValueIndexDef,
    /// Parsed index path.
    pub path: Path,
    /// Compiled query tree for key generation.
    pub tree: QueryTree,
    btree: Arc<BTree>,
}

impl ValueIndex {
    /// Parse + validate an index path ("a simple XPath expression without
    /// predicates").
    pub fn parse_path(text: &str) -> Result<Path> {
        let path = XPathParser::new().parse(text)?;
        if !path.is_simple() {
            return Err(EngineError::Invalid(format!(
                "index path {text:?} must be a simple path without predicates"
            )));
        }
        Ok(path)
    }

    /// Create the index structure in `space`.
    pub fn create(space: Arc<TableSpace>, def: ValueIndexDef) -> Result<ValueIndex> {
        let path = Self::parse_path(&def.path_text)?;
        let tree = QueryTree::compile(&path)?;
        let btree = BTree::create(space, VALUE_INDEX_ANCHOR)?;
        Ok(ValueIndex {
            def,
            path,
            tree,
            btree,
        })
    }

    /// Open an existing index.
    pub fn open(space: Arc<TableSpace>, def: ValueIndexDef) -> Result<ValueIndex> {
        let path = Self::parse_path(&def.path_text)?;
        let tree = QueryTree::compile(&path)?;
        let btree = BTree::open(space, VALUE_INDEX_ANCHOR)?;
        Ok(ValueIndex {
            def,
            path,
            tree,
            btree,
        })
    }

    /// Insert the entries for `items` (QuickXScan results with node IDs) of
    /// document `doc`. The RID of each node's record is resolved through the
    /// XML table's NodeID index. Items whose value does not cast to the key
    /// type are skipped.
    pub fn insert_entries(
        &self,
        txn: &Txn,
        doc: DocId,
        xml: &XmlTable,
        items: &[ResultItem],
    ) -> Result<u64> {
        let mut inserted = 0u64;
        for item in items {
            let Some(node) = &item.node else { continue };
            let Some(keyval) = encode_key(self.def.key_type, &item.value) else {
                continue; // not castable: zero entries for this node (§3.3)
            };
            let Some(rid) = xml.locate(doc, node)? else {
                return Err(EngineError::Record(format!(
                    "indexed node {node} of doc {doc} has no record"
                )));
            };
            let key = encode_entry_key(&keyval, doc, node);
            let prev = self.btree.insert(&key, rid.to_u64())?;
            txn.log(&LogRecord::IndexInsert {
                txn: txn.id(),
                space: self.def.space_id,
                anchor: VALUE_INDEX_ANCHOR as u32,
                key: key.clone(),
                value: rid.to_u64(),
                prev,
            })?;
            let btree = Arc::clone(&self.btree);
            let space = self.def.space_id;
            let rid_val = rid.to_u64();
            txn.push_undo(Box::new(move |ctx| {
                match prev {
                    Some(p) => {
                        ctx.log(&LogRecord::IndexInsert {
                            txn: ctx.txn(),
                            space,
                            anchor: VALUE_INDEX_ANCHOR as u32,
                            key: key.clone(),
                            value: p,
                            prev: None,
                        })?;
                        btree.insert(&key, p)?;
                    }
                    None => {
                        ctx.log(&LogRecord::IndexDelete {
                            txn: ctx.txn(),
                            space,
                            anchor: VALUE_INDEX_ANCHOR as u32,
                            key: key.clone(),
                            value: rid_val,
                        })?;
                        btree.delete(&key)?;
                    }
                }
                Ok(())
            }));
            inserted += 1;
        }
        Ok(inserted)
    }

    /// Delete the entries for `items` of document `doc`.
    pub fn delete_entries(&self, txn: &Txn, doc: DocId, items: &[ResultItem]) -> Result<u64> {
        let mut removed = 0u64;
        for item in items {
            let Some(node) = &item.node else { continue };
            let Some(keyval) = encode_key(self.def.key_type, &item.value) else {
                continue;
            };
            let key = encode_entry_key(&keyval, doc, node);
            if let Some(v) = self.btree.delete(&key)? {
                txn.log(&LogRecord::IndexDelete {
                    txn: txn.id(),
                    space: self.def.space_id,
                    anchor: VALUE_INDEX_ANCHOR as u32,
                    key: key.clone(),
                    value: v,
                })?;
                let btree = Arc::clone(&self.btree);
                let space = self.def.space_id;
                txn.push_undo(Box::new(move |ctx| {
                    ctx.log(&LogRecord::IndexInsert {
                        txn: ctx.txn(),
                        space,
                        anchor: VALUE_INDEX_ANCHOR as u32,
                        key: key.clone(),
                        value: v,
                        prev: None,
                    })?;
                    btree.insert(&key, v)?;
                    Ok(())
                }));
                removed += 1;
            }
        }
        Ok(removed)
    }

    /// Exact-value lookup: all entries with the given encoded key value.
    pub fn lookup_eq(&self, keyval: &[u8]) -> Result<Vec<IndexEntry>> {
        let lo = escape_keyval(keyval);
        let hi = escape_keyval_upper(keyval);
        self.range_raw(&lo, &hi)
    }

    /// Range scan over *encoded key values*: `lo..hi` with inclusivity flags
    /// (`None` = unbounded).
    pub fn range(
        &self,
        lo: Option<(&[u8], bool)>,
        hi: Option<(&[u8], bool)>,
    ) -> Result<Vec<IndexEntry>> {
        let lo_key = match lo {
            Some((v, true)) => escape_keyval(v),
            Some((v, false)) => escape_keyval_upper(v),
            None => Vec::new(),
        };
        let hi_key = match hi {
            Some((v, true)) => escape_keyval_upper(v),
            Some((v, false)) => escape_keyval(v),
            None => vec![0xFF; 9], // above any escaped key
        };
        self.range_raw(&lo_key, &hi_key)
    }

    fn range_raw(&self, lo: &[u8], hi: &[u8]) -> Result<Vec<IndexEntry>> {
        let mut out = Vec::new();
        let mut err = None;
        self.btree.scan_from(lo, |k, v| {
            if k >= hi {
                return false;
            }
            match decode_entry_key(k) {
                Ok((keyval, doc, node)) => out.push(IndexEntry {
                    keyval,
                    doc,
                    node,
                    rid: Rid::from_u64(v),
                }),
                Err(e) => {
                    err = Some(e);
                    return false;
                }
            }
            true
        })?;
        if let Some(e) = err {
            return Err(e);
        }
        Ok(out)
    }

    /// Number of entries (full scan).
    pub fn len(&self) -> Result<u64> {
        Ok(self.btree.len()?)
    }

    /// True when the index holds no entries.
    pub fn is_empty(&self) -> Result<bool> {
        Ok(self.btree.is_empty()?)
    }

    /// Pages occupied by the index (for the index-size/data-size reports).
    pub fn page_count(&self) -> Result<u64> {
        Ok(self.btree.page_count()?)
    }

    /// The underlying B+tree (recovery wiring and tests).
    pub fn btree_arc(&self) -> Arc<BTree> {
        Arc::clone(&self.btree)
    }
}

/// Key-generation observer plugged into the [`crate::pack::Packer`]: runs one
/// QuickXScan per value index over the insertion event stream, with node IDs
/// supplied by the packer — "index keys for the node ID index and XPath value
/// indexes are generated per record" (§3.2) without any separate pass.
pub struct IndexKeyGen<'q, 'd> {
    scans: Vec<QuickXScan<'q, 'd>>,
}

impl<'q, 'd> IndexKeyGen<'q, 'd> {
    /// Build scans for the given query trees.
    pub fn new(trees: &'q [QueryTree], dict: &'d NameDict) -> Self {
        IndexKeyGen {
            scans: trees.iter().map(|t| QuickXScan::new(t, dict)).collect(),
        }
    }

    /// Finish, returning one result list per index (node IDs + values).
    pub fn finish(self) -> Result<Vec<Vec<ResultItem>>> {
        self.scans
            .into_iter()
            .map(|s| s.finish().map_err(EngineError::from))
            .collect()
    }
}

impl NodeObserver for IndexKeyGen<'_, '_> {
    fn node(&mut self, id: &NodeId, ev: &Event<'_>) -> Result<()> {
        for scan in &mut self.scans {
            scan.set_current_node(id.clone());
            scan.event(*ev)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pack::Packer;
    use rx_storage::wal::{MemLogStore, Wal};
    use rx_storage::{BufferPool, LockManager, MemBackend, TxnManager};
    use rx_xml::parser::Parser;

    fn setup(path: &str, key_type: KeyType) -> (XmlTable, ValueIndex, Arc<TxnManager>, NameDict) {
        let pool = BufferPool::new(1024);
        let xspace = TableSpace::create(pool.clone(), 10, Arc::new(MemBackend::new())).unwrap();
        let ispace = TableSpace::create(pool, 11, Arc::new(MemBackend::new())).unwrap();
        let xt = XmlTable::create(xspace).unwrap();
        let vi = ValueIndex::create(
            ispace,
            ValueIndexDef {
                name: "idx".into(),
                path_text: path.into(),
                key_type,
                space_id: 11,
            },
        )
        .unwrap();
        let txns = TxnManager::new(
            Wal::new(Arc::new(MemLogStore::new())),
            LockManager::with_defaults(),
        );
        (xt, vi, txns, NameDict::new())
    }

    fn insert_doc(
        xt: &XmlTable,
        vi: &ValueIndex,
        txns: &Arc<TxnManager>,
        dict: &NameDict,
        doc: DocId,
        input: &str,
    ) {
        let trees = vec![vi.tree.clone()];
        let mut keygen = IndexKeyGen::new(&trees, dict);
        let mut records = Vec::new();
        let mut packer = Packer::with_target(800, &mut records, &mut keygen);
        Parser::new(dict).parse(input, &mut packer).unwrap();
        packer.finish().unwrap();
        let txn = txns.begin().unwrap();
        for r in &records {
            xt.insert_record(&txn, doc, r).unwrap();
        }
        let items = keygen.finish().unwrap();
        vi.insert_entries(&txn, doc, xt, &items[0]).unwrap();
        txn.commit().unwrap();
    }

    #[test]
    fn keygen_produces_entries_with_rids() {
        let (xt, vi, txns, dict) = setup("/Catalog//RegPrice", KeyType::Double);
        insert_doc(
            &xt,
            &vi,
            &txns,
            &dict,
            1,
            r#"<Catalog>
                <Product><RegPrice>150</RegPrice></Product>
                <Product><RegPrice>50</RegPrice></Product>
                <Product><RegPrice>250.5</RegPrice></Product>
            </Catalog>"#,
        );
        assert_eq!(vi.len().unwrap(), 3);
        // Exact lookup.
        let key = encode_key(KeyType::Double, "150").unwrap();
        let hits = vi.lookup_eq(&key).unwrap();
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].doc, 1);
        // The RID leads to a real record containing the node.
        let row = xt.fetch(hits[0].rid).unwrap();
        assert_eq!(row.doc, 1);
        // Fetching the node by its logical ID works too (§3.4's access from
        // a value index).
        let sn = crate::traverse::fetch_node(&xt, 1, &hits[0].node)
            .unwrap()
            .unwrap();
        match sn {
            crate::traverse::StoredNode::Element { name } => {
                assert!(dict.matches_local(name, "RegPrice"));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn range_scan_numeric_order() {
        let (xt, vi, txns, dict) = setup("//price", KeyType::Double);
        insert_doc(
            &xt,
            &vi,
            &txns,
            &dict,
            1,
            "<r><price>5</price><price>100</price><price>25</price><price>7.5</price></r>",
        );
        // price > 7 and price < 100: expect 7.5 and 25.
        let lo = encode_key(KeyType::Double, "7").unwrap();
        let hi = encode_key(KeyType::Double, "100").unwrap();
        let hits = vi.range(Some((&lo, false)), Some((&hi, false))).unwrap();
        assert_eq!(hits.len(), 2);
        // Entries come back in key order: 7.5 then 25.
        let v75 = encode_key(KeyType::Double, "7.5").unwrap();
        assert_eq!(hits[0].keyval, v75);
    }

    #[test]
    fn non_castable_values_skipped() {
        let (xt, vi, txns, dict) = setup("//price", KeyType::Double);
        insert_doc(
            &xt,
            &vi,
            &txns,
            &dict,
            1,
            "<r><price>19.99</price><price>call us</price></r>",
        );
        assert_eq!(vi.len().unwrap(), 1, "only the numeric price is indexed");
    }

    #[test]
    fn string_keys_with_nul_bytes_order_correctly() {
        // The escape encoding must keep keyval-major ordering even around
        // embedded zero bytes and prefixes.
        let keys: Vec<&[u8]> = vec![b"", b"\x00", b"\x00a", b"a", b"a\x00", b"ab", b"b"];
        let escaped: Vec<Vec<u8>> = keys.iter().map(|k| escape_keyval(k)).collect();
        for i in 0..keys.len() {
            for j in 0..keys.len() {
                assert_eq!(
                    escaped[i].cmp(&escaped[j]),
                    keys[i].cmp(keys[j]),
                    "{:?} vs {:?}",
                    keys[i],
                    keys[j]
                );
            }
        }
        // Suffixed entries stay within their key's [escape, upper) window.
        for k in &keys {
            let mut entry = escape_keyval(k);
            entry.extend_from_slice(&1u64.to_be_bytes());
            assert!(entry.as_slice() >= escape_keyval(k).as_slice());
            assert!(entry < escape_keyval_upper(k));
        }
    }

    #[test]
    fn attribute_index() {
        let (xt, vi, txns, dict) = setup("/r/p/@id", KeyType::String);
        insert_doc(
            &xt,
            &vi,
            &txns,
            &dict,
            4,
            r#"<r><p id="alpha"/><p id="beta"/></r>"#,
        );
        assert_eq!(vi.len().unwrap(), 2);
        let hits = vi.lookup_eq(b"beta").unwrap();
        assert_eq!(hits.len(), 1);
        match crate::traverse::fetch_node(&xt, 4, &hits[0].node)
            .unwrap()
            .unwrap()
        {
            crate::traverse::StoredNode::Attribute { value, .. } => {
                assert_eq!(value, "beta");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn multiple_documents_and_delete() {
        let (xt, vi, txns, dict) = setup("//v", KeyType::String);
        for doc in 1..=3u64 {
            insert_doc(&xt, &vi, &txns, &dict, doc, "<r><v>shared</v></r>");
        }
        assert_eq!(vi.len().unwrap(), 3);
        let hits = vi.lookup_eq(b"shared").unwrap();
        assert_eq!(hits.len(), 3);
        // Doc-ordered by (keyval, doc, node).
        assert_eq!(
            hits.iter().map(|h| h.doc).collect::<Vec<_>>(),
            vec![1, 2, 3]
        );
        // Delete doc 2's entries by re-deriving items.
        let txn = txns.begin().unwrap();
        let items: Vec<ResultItem> = hits
            .iter()
            .filter(|h| h.doc == 2)
            .map(|h| ResultItem {
                value: "shared".to_string(),
                node: Some(h.node.clone()),
                order: 0,
            })
            .collect();
        vi.delete_entries(&txn, 2, &items).unwrap();
        txn.commit().unwrap();
        assert_eq!(vi.lookup_eq(b"shared").unwrap().len(), 2);
    }

    #[test]
    fn rejects_predicate_paths() {
        assert!(ValueIndex::parse_path("/a[b=1]/c").is_err());
        assert!(ValueIndex::parse_path("/catalog//productname").is_ok());
    }

    #[test]
    fn index_much_smaller_than_data() {
        // §3.3: "index size should be kept much smaller than data size".
        let (xt, vi, txns, dict) = setup("//name", KeyType::String);
        let body: String = (0..100)
            .map(|i| format!("<p><name>n{i}</name><desc>{}</desc></p>", "d".repeat(200)))
            .collect();
        insert_doc(&xt, &vi, &txns, &dict, 1, &format!("<r>{body}</r>"));
        let (_, _, data_bytes, _, _) = xt.stats().unwrap();
        let index_pages = vi.page_count().unwrap();
        assert!(
            index_pages * 4096 < data_bytes,
            "index {index_pages} pages vs data {data_bytes} bytes"
        );
    }
}
