//! Traversal of stored XML data (§3.4).
//!
//! "To traverse in document order a persistently stored XML document with a
//! given docid value, first the NodeID index is searched with (docid, 00) as
//! the key. The root record can be identified. The XMLData is then traversed.
//! If a proxy node is encountered, its node ID nodeid is used to search the
//! NodeID index … Stacking has to be used during traversal. At a higher
//! level, the records form a block-based tree, and traversal of this tree is
//! also in a depth-first order."
//!
//! The traversal pushes virtual SAX events annotated with absolute node IDs,
//! so the same visitor drives serialization (ignore the IDs), QuickXScan
//! re-evaluation (feed `set_current_node`), and value-index maintenance.

use crate::doccache::{CachedDoc, LoadedRecord};
use crate::error::{EngineError, Result};
use crate::pack::{read_nodes, NodeView};
use crate::xmltable::{subtree_successor, DocId, XmlTable};
use rx_storage::Rid;
use rx_xml::event::{Event, EventSink};
use rx_xml::nodeid::NodeId;
use rx_xml::value::TypeAnn;
use std::sync::Arc;

/// A visitor receiving `(node id, event)` pairs from stored-document
/// traversal. Start/End document and namespace events carry the context/root
/// IDs of their record.
pub trait IdEventSink {
    /// Handle one identified event.
    fn id_event(&mut self, id: &NodeId, ev: Event<'_>) -> Result<()>;
}

/// Adapter: drop the node IDs and forward plain events (e.g. into the
/// serializer).
pub struct DropIds<'a, S: EventSink + ?Sized>(pub &'a mut S);

impl<S: EventSink + ?Sized> IdEventSink for DropIds<'_, S> {
    fn id_event(&mut self, _id: &NodeId, ev: Event<'_>) -> Result<()> {
        self.0.event(ev).map_err(EngineError::from)
    }
}

/// Counters for traversal experiments (E2).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct TraverseStats {
    /// Records fetched from the heap.
    pub records_fetched: u64,
    /// NodeID-index probes performed (root lookup + proxy resolutions).
    pub index_probes: u64,
    /// Nodes visited.
    pub nodes: u64,
}

/// Depth-first, document-order traversal of one stored document.
///
/// When the XML table carries a document cache and the document has a valid
/// snapshot, every locate resolves with an in-memory binary search and every
/// record is an `Arc` clone — zero index probes, zero heap fetches. A full
/// [`Traverser::run`] over an uncached document builds and publishes a
/// snapshot read-through (discarded if a writer raced the build).
pub struct Traverser<'x> {
    xml: &'x XmlTable,
    doc: DocId,
    cached: Option<Arc<CachedDoc>>,
    /// Ceiling-probe memo for the cold path: `(probe, upper, record)` of the
    /// last successful locate. For sorted probe sequences (the NodeID
    /// no-verify path, nested subtree descents) any probe `p` with
    /// `last_probe <= p <= upper` must resolve to the same record — there is
    /// no index entry in `[last_probe, upper)` or the previous ceiling probe
    /// would have returned it — so consecutive anchors sharing a record cost
    /// one probe + one fetch instead of one each.
    memo: Option<(Vec<u8>, Vec<u8>, LoadedRecord)>,
    /// Counters.
    pub stats: TraverseStats,
}

impl<'x> Traverser<'x> {
    /// Bind to a document of an XML table, adopting a cached snapshot when
    /// the table's document cache holds a valid one.
    pub fn new(xml: &'x XmlTable, doc: DocId) -> Self {
        let cached = xml
            .doc_cache()
            .filter(|c| c.enabled())
            .and_then(|c| c.get(xml.space_id(), doc));
        Traverser {
            xml,
            doc,
            cached,
            memo: None,
            stats: TraverseStats::default(),
        }
    }

    /// Fetch + decode one record into shareable form (cold path).
    fn load(&self, rid: Rid) -> Result<LoadedRecord> {
        LoadedRecord::decode(self.xml.heap().fetch_arc(rid)?)
    }

    /// Resolve the record containing `node`: warm from the snapshot, cold
    /// through the memoized NodeID ceiling probe.
    fn locate_node(&mut self, node: &NodeId) -> Result<Option<LoadedRecord>> {
        self.locate_ceil(node.as_bytes())
    }

    /// Resolve the record owning the first interval upper at-or-above raw
    /// key bytes (which, for subtree successors, may not be a well-formed
    /// node ID).
    fn locate_ceil(&mut self, probe: &[u8]) -> Result<Option<LoadedRecord>> {
        if let Some(c) = &self.cached {
            return Ok(c.locate(probe).cloned());
        }
        if let Some((lo, hi, rec)) = &self.memo {
            if probe >= lo.as_slice() && probe <= hi.as_slice() {
                return Ok(Some(rec.clone()));
            }
        }
        self.stats.index_probes += 1;
        match self.xml.locate_raw(self.doc, probe)? {
            Some((upper, rid)) => {
                self.stats.records_fetched += 1;
                let rec = self.load(rid)?;
                self.memo = Some((probe.to_vec(), upper.as_bytes().to_vec(), rec.clone()));
                Ok(Some(rec))
            }
            None => Ok(None),
        }
    }

    /// Attempt a read-through populate: capture a publish token, build a
    /// snapshot, publish it. A failed publish (a writer raced the build)
    /// discards the snapshot and leaves the traverser cold.
    fn try_populate(&mut self) -> Result<()> {
        if self.cached.is_some() {
            return Ok(());
        }
        let Some(cache) = self.xml.doc_cache().filter(|c| c.enabled()) else {
            return Ok(());
        };
        let Some(token) = cache.begin_publish(self.xml.space_id(), self.doc) else {
            return Ok(());
        };
        if let Some(built) = CachedDoc::build(self.xml, self.doc, &mut self.stats)? {
            let built = Arc::new(built);
            if cache.publish(token, Arc::clone(&built)) {
                self.cached = Some(built);
            }
        }
        Ok(())
    }

    /// Traverse the whole document, emitting events (with IDs) into `sink`.
    pub fn run(&mut self, sink: &mut dyn IdEventSink) -> Result<()> {
        let root = NodeId::root();
        sink.id_event(&root, Event::StartDocument)?;
        // A full traversal reads every record anyway: warm the cache
        // read-through so the next traversal of this document is free.
        self.try_populate()?;
        // §3.4: search the NodeID index with (docid, 00).
        let Some(rec) = self.locate_node(&root)? else {
            return Err(EngineError::NotFound {
                kind: "document",
                name: format!("docid {}", self.doc),
            });
        };
        self.replay_region(rec.region(), &rec.header().context.clone(), sink)?;
        sink.id_event(&root, Event::EndDocument)
    }

    /// Traverse only the subtree rooted at `node` (used to serialize query
    /// results fetched through value indexes).
    pub fn run_subtree(&mut self, node: &NodeId, sink: &mut dyn IdEventSink) -> Result<()> {
        let Some(rec) = self.locate_node(node)? else {
            return Err(EngineError::NotFound {
                kind: "node",
                name: format!("docid {} node {}", self.doc, node),
            });
        };
        self.replay_find(rec.region(), &rec.header().context.clone(), node, sink)
    }

    /// The string value of the subtree rooted at `node` (see the module-level
    /// [`string_value`]); as a method it shares the traverser's snapshot and
    /// probe memo across calls, so evaluating many anchors of one document
    /// re-fetches nothing when consecutive anchors live in the same record.
    pub fn string_value(&mut self, node: &NodeId) -> Result<String> {
        struct Collect {
            out: String,
            root: NodeId,
        }
        impl IdEventSink for Collect {
            fn id_event(&mut self, id: &NodeId, ev: Event<'_>) -> Result<()> {
                match ev {
                    Event::Text { value, .. } => self.out.push_str(value),
                    // Only the target attribute itself contributes its
                    // value; attributes of descendant elements do not.
                    Event::Attribute { value, .. } if id == &self.root => {
                        self.out.push_str(value);
                    }
                    _ => {}
                }
                Ok(())
            }
        }
        let mut c = Collect {
            out: String::new(),
            root: node.clone(),
        };
        self.run_subtree(node, &mut c)?;
        Ok(c.out)
    }

    /// Look up a single node's kind/value (see the module-level
    /// [`fetch_node`]), sharing the snapshot and probe memo.
    pub fn fetch_node(&mut self, node: &NodeId) -> Result<Option<StoredNode>> {
        let Some(rec) = self.locate_node(node)? else {
            return Ok(None);
        };
        self.find_in_region(rec.region(), &rec.header().context.clone(), node)
    }

    /// Replay all sibling entries of a region whose parent is `ctx`.
    fn replay_region(
        &mut self,
        region: &[u8],
        ctx: &NodeId,
        sink: &mut dyn IdEventSink,
    ) -> Result<()> {
        for entry in read_nodes(region) {
            let entry = entry?;
            self.replay_entry(&entry, ctx, sink)?;
        }
        Ok(())
    }

    fn replay_entry(
        &mut self,
        entry: &NodeView<'_>,
        ctx: &NodeId,
        sink: &mut dyn IdEventSink,
    ) -> Result<()> {
        match entry {
            NodeView::Element {
                rel,
                name,
                nsdecls,
                content,
                ..
            } => {
                let abs = ctx.child(rel);
                self.stats.nodes += 1;
                sink.id_event(&abs, Event::StartElement { name: *name })?;
                for (p, u) in nsdecls {
                    sink.id_event(
                        &abs,
                        Event::NamespaceDecl {
                            prefix: *p,
                            uri: *u,
                        },
                    )?;
                }
                self.replay_region(content, &abs, sink)?;
                sink.id_event(&abs, Event::EndElement)?;
            }
            NodeView::Attribute {
                rel,
                name,
                ann,
                value,
            } => {
                let abs = ctx.child(rel);
                self.stats.nodes += 1;
                sink.id_event(
                    &abs,
                    Event::Attribute {
                        name: *name,
                        value,
                        ann: *ann,
                    },
                )?;
            }
            NodeView::Text { rel, ann, value } => {
                let abs = ctx.child(rel);
                self.stats.nodes += 1;
                sink.id_event(&abs, Event::Text { value, ann: *ann })?;
            }
            NodeView::Comment { rel, value } => {
                let abs = ctx.child(rel);
                self.stats.nodes += 1;
                sink.id_event(&abs, Event::Comment { value })?;
            }
            NodeView::Pi { rel, target, value } => {
                let abs = ctx.child(rel);
                self.stats.nodes += 1;
                sink.id_event(
                    &abs,
                    Event::Pi {
                        target: *target,
                        data: value,
                    },
                )?;
            }
            NodeView::Proxy { first, count, .. } => {
                // Resolve the range through the NodeID index, record by
                // record (§3.4's block-tree descent).
                let mut remaining = *count;
                let mut probe: Vec<u8> = ctx.child(first).as_bytes().to_vec();
                while remaining > 0 {
                    let Some(rec) = self.locate_ceil(&probe)? else {
                        return Err(EngineError::Record(format!(
                            "dangling proxy: no record covers doc {} id {:02x?}",
                            self.doc, probe
                        )));
                    };
                    if &rec.header().context != ctx {
                        return Err(EngineError::Record(format!(
                            "proxy resolution landed on record with context {} (expected {})",
                            rec.header().context,
                            ctx
                        )));
                    }
                    let mut last_root: Option<NodeId> = None;
                    for entry in read_nodes(rec.region()) {
                        let entry = entry?;
                        if remaining == 0 {
                            break;
                        }
                        match &entry {
                            NodeView::Proxy { count: c, last, .. } => {
                                remaining = remaining.saturating_sub(*c);
                                last_root = Some(ctx.child(last));
                            }
                            other => {
                                remaining -= 1;
                                last_root = Some(ctx.child(other.rel()));
                            }
                        }
                        self.replay_entry(&entry, ctx, sink)?;
                    }
                    match last_root {
                        Some(last) => probe = subtree_successor(&last),
                        None => {
                            return Err(EngineError::Record(
                                "proxy resolution made no progress".into(),
                            ))
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// Locate `target` within a region (descending through subtree-length
    /// skips and proxies) and replay just its subtree.
    fn replay_find(
        &mut self,
        region: &[u8],
        ctx: &NodeId,
        target: &NodeId,
        sink: &mut dyn IdEventSink,
    ) -> Result<()> {
        for entry in read_nodes(region) {
            let entry = entry?;
            match &entry {
                NodeView::Proxy { first, last, .. } => {
                    let first_abs = ctx.child(first);
                    let last_abs = ctx.child(last);
                    // Does the target fall inside the proxied range?
                    let in_range = target >= &first_abs
                        && target.as_bytes() < subtree_successor(&last_abs).as_slice();
                    if in_range {
                        let Some(rec) = self.locate_node(target)? else {
                            return Err(EngineError::NotFound {
                                kind: "node",
                                name: format!("docid {} node {target}", self.doc),
                            });
                        };
                        return self.replay_find(
                            rec.region(),
                            &rec.header().context.clone(),
                            target,
                            sink,
                        );
                    }
                }
                other => {
                    let abs = ctx.child(other.rel());
                    if &abs == target {
                        return self.replay_entry(&entry, ctx, sink);
                    }
                    if abs.is_ancestor(target) {
                        if let NodeView::Element { content, .. } = &entry {
                            return self.replay_find(content, &abs, target, sink);
                        }
                        return Err(EngineError::NotFound {
                            kind: "node",
                            name: format!("docid {} node {target}", self.doc),
                        });
                    }
                    // Otherwise: skip the whole subtree (the §3.1/§3.4
                    // subtree-length skip — zero decoding of its interior).
                }
            }
        }
        Err(EngineError::NotFound {
            kind: "node",
            name: format!("docid {} node {target}", self.doc),
        })
    }

    /// Locate `target` within a region and decode just that node.
    fn find_in_region(
        &mut self,
        region: &[u8],
        ctx: &NodeId,
        target: &NodeId,
    ) -> Result<Option<StoredNode>> {
        for entry in read_nodes(region) {
            let entry = entry?;
            match &entry {
                NodeView::Proxy { first, last, .. } => {
                    let first_abs = ctx.child(first);
                    let last_abs = ctx.child(last);
                    if target >= &first_abs
                        && target.as_bytes() < subtree_successor(&last_abs).as_slice()
                    {
                        // The target lives in another record; locate from
                        // the top again (the ceiling probe is exact).
                        let Some(rec) = self.locate_node(target)? else {
                            return Ok(None);
                        };
                        return self.find_in_region(
                            rec.region(),
                            &rec.header().context.clone(),
                            target,
                        );
                    }
                }
                other => {
                    let abs = ctx.child(other.rel());
                    if &abs == target {
                        return Ok(Some(match other {
                            NodeView::Element { name, .. } => StoredNode::Element { name: *name },
                            NodeView::Attribute {
                                name, ann, value, ..
                            } => StoredNode::Attribute {
                                name: *name,
                                value: (*value).to_string(),
                                ann: *ann,
                            },
                            NodeView::Text { ann, value, .. } => StoredNode::Text {
                                value: (*value).to_string(),
                                ann: *ann,
                            },
                            NodeView::Comment { value, .. } => StoredNode::Comment {
                                value: (*value).to_string(),
                            },
                            NodeView::Pi {
                                target: t, value, ..
                            } => StoredNode::Pi {
                                target: *t,
                                value: (*value).to_string(),
                            },
                            NodeView::Proxy { .. } => unreachable!(),
                        }));
                    }
                    if abs.is_ancestor(target) {
                        if let NodeView::Element { content, .. } = &entry {
                            return self.find_in_region(content, &abs, target);
                        }
                        return Ok(None);
                    }
                }
            }
        }
        Ok(None)
    }
}

/// The string value of the subtree rooted at `node`: concatenated descendant
/// *text* (attributes of descendant elements are excluded, per the XDM);
/// for an attribute node itself, the attribute value.
pub fn string_value(xml: &XmlTable, doc: DocId, node: &NodeId) -> Result<String> {
    Traverser::new(xml, doc).string_value(node)
}

/// Fetch one node's kind/value without replaying its whole subtree (the
/// "all the information required by the data model is available" accessor).
#[derive(Debug, Clone, PartialEq)]
pub enum StoredNode {
    /// An element (name id).
    Element {
        /// Name.
        name: rx_xml::QNameId,
    },
    /// An attribute.
    Attribute {
        /// Name.
        name: rx_xml::QNameId,
        /// Value.
        value: String,
        /// Annotation.
        ann: TypeAnn,
    },
    /// A text node.
    Text {
        /// Content.
        value: String,
        /// Annotation.
        ann: TypeAnn,
    },
    /// A comment node.
    Comment {
        /// Content.
        value: String,
    },
    /// A processing instruction.
    Pi {
        /// Target name.
        target: rx_xml::QNameId,
        /// Data.
        value: String,
    },
}

/// Look up a single node by `(docid, nodeid)` — the access path used when an
/// XPath value index hands back a logical node reference (§3.4).
pub fn fetch_node(xml: &XmlTable, doc: DocId, node: &NodeId) -> Result<Option<StoredNode>> {
    Traverser::new(xml, doc).fetch_node(node)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pack::{NoObserver, Packer};
    use rx_storage::wal::{MemLogStore, Wal};
    use rx_storage::{BufferPool, LockManager, MemBackend, TableSpace, TxnManager};
    use rx_xml::name::NameDict;
    use rx_xml::parser::Parser;
    use rx_xml::serialize::Serializer;
    use std::sync::Arc;

    fn store(input: &str, target: usize) -> (XmlTable, NameDict) {
        let pool = BufferPool::new(512);
        let space = TableSpace::create(pool, 10, Arc::new(MemBackend::new())).unwrap();
        let xt = XmlTable::create(space).unwrap();
        let dict = NameDict::new();
        let txns = TxnManager::new(
            Wal::new(Arc::new(MemLogStore::new())),
            LockManager::with_defaults(),
        );
        let mut records = Vec::new();
        let mut obs = NoObserver;
        let mut p = Packer::with_target(target, &mut records, &mut obs);
        Parser::new(&dict).parse(input, &mut p).unwrap();
        p.finish().unwrap();
        let txn = txns.begin().unwrap();
        for r in &records {
            xt.insert_record(&txn, 1, r).unwrap();
        }
        txn.commit().unwrap();
        (xt, dict)
    }

    fn roundtrip(input: &str, target: usize) -> String {
        let (xt, dict) = store(input, target);
        let mut ser = Serializer::new(&dict);
        let mut sink = DropIds(&mut ser);
        Traverser::new(&xt, 1).run(&mut sink).unwrap();
        ser.finish()
    }

    #[test]
    fn single_record_roundtrip() {
        let doc = r#"<a x="1"><b>hi</b><c/><!--n--><?p q?></a>"#;
        assert_eq!(roundtrip(doc, 3500), doc);
    }

    #[test]
    fn multi_record_roundtrip() {
        let filler = "t".repeat(200);
        let doc = format!(
            "<cat>{}</cat>",
            (0..25)
                .map(|i| format!("<p id=\"{i}\"><n>item{i}</n><v>{filler}</v></p>"))
                .collect::<String>()
        );
        for target in [300, 600, 1500, 3500] {
            assert_eq!(roundtrip(&doc, target), doc, "target {target}");
        }
    }

    #[test]
    fn deep_document_roundtrip() {
        let mut doc = String::new();
        for i in 0..40 {
            doc.push_str(&format!("<l{i}>"));
        }
        doc.push_str("core");
        for i in (0..40).rev() {
            doc.push_str(&format!("</l{i}>"));
        }
        for target in [200, 3500] {
            assert_eq!(roundtrip(&doc, target), doc, "target {target}");
        }
    }

    #[test]
    fn namespaces_survive_storage() {
        let doc = r#"<c:r xmlns:c="urn:c"><c:x>1</c:x></c:r>"#;
        assert_eq!(roundtrip(doc, 3500), doc);
        assert_eq!(roundtrip(doc, 120), doc);
    }

    #[test]
    fn traversal_stats_reflect_spilling() {
        let filler = "q".repeat(300);
        let doc = format!(
            "<r>{}</r>",
            (0..12)
                .map(|i| format!("<p><v>{filler}</v><w>{i}</w></p>"))
                .collect::<String>()
        );
        let (xt, dict) = store(&doc, 500);
        let mut ser = Serializer::new(&dict);
        let mut sink = DropIds(&mut ser);
        let mut t = Traverser::new(&xt, 1);
        t.run(&mut sink).unwrap();
        assert!(t.stats.records_fetched > 3);
        assert!(t.stats.index_probes >= 2);
        assert_eq!(t.stats.nodes, 1 + 12 * 5); // r + 12 * (p, v, text, w, text)
    }

    #[test]
    fn string_value_and_fetch_node() {
        let filler = "s".repeat(280);
        let doc = format!("<a><b><c>one</c><d>two</d></b><e>{filler}</e><f>three</f></a>");
        let (xt, dict) = store(&doc, 400);
        // b = /a/b is node 02 02.
        let b = NodeId::from_bytes(&[0x02, 0x02]).unwrap();
        assert_eq!(string_value(&xt, 1, &b).unwrap(), "onetwo");
        match fetch_node(&xt, 1, &b).unwrap().unwrap() {
            StoredNode::Element { name } => assert!(dict.matches_local(name, "b")),
            other => panic!("unexpected {other:?}"),
        }
        // f's text: f is the 3rd child of a (02 06), text (02 06 02).
        let ftext = NodeId::from_bytes(&[0x02, 0x06, 0x02]).unwrap();
        match fetch_node(&xt, 1, &ftext).unwrap().unwrap() {
            StoredNode::Text { value, .. } => assert_eq!(value, "three"),
            other => panic!("unexpected {other:?}"),
        }
        // Missing node.
        let nowhere = NodeId::from_bytes(&[0x7F, 0x02]).unwrap();
        assert!(fetch_node(&xt, 1, &nowhere).unwrap().is_none());
    }

    #[test]
    fn subtree_replay() {
        let doc = "<a><b><c>x</c></b><d>y</d></a>";
        let (xt, dict) = store(doc, 3500);
        let b = NodeId::from_bytes(&[0x02, 0x02]).unwrap();
        let mut ser = Serializer::new(&dict);
        let mut sink = DropIds(&mut ser);
        Traverser::new(&xt, 1).run_subtree(&b, &mut sink).unwrap();
        assert_eq!(ser.finish(), "<b><c>x</c></b>");
    }
}
