//! XPath containment between query paths and index paths (§4.3).
//!
//! "When the XPath expression of the index contains a query XPath expression
//! but is not equivalent to it, we use the index for filtering, and
//! re-evaluation of the query XPath expression on the document data is
//! necessary."
//!
//! For the linear, predicate-free paths that index definitions use (§3.3),
//! containment `P_index ⊇ P_query` is decided by searching for a
//! *homomorphism* from the index pattern onto the query pattern: every index
//! step maps to a query step with an implied name test, child edges map to
//! child edges, descendant edges map to downward paths of length ≥ 1, and
//! both terminals coincide. Equality of skeletons gives an **exact** match,
//! strict containment gives a **filtering** match (Table 2 cases 1 vs 2).

use crate::ast::{Axis, NodeTest, Path};

/// How an index path relates to a query path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IndexMatch {
    /// The index path matches exactly the nodes the query path matches:
    /// index results need no re-check (Table 2 case 1).
    Exact,
    /// The index path matches a superset: use the index to *filter*, then
    /// re-evaluate the query on the fetched data (Table 2 case 2).
    Filtering,
    /// The index cannot serve this query path.
    None,
}

fn test_implies(index: &NodeTest, query: &NodeTest) -> bool {
    match (index, query) {
        (NodeTest::AnyKind, _) => true,
        (NodeTest::AnyName, NodeTest::AnyName) => true,
        (NodeTest::AnyName, NodeTest::Name { .. }) => true,
        (NodeTest::Text, NodeTest::Text) => true,
        (NodeTest::Comment, NodeTest::Comment) => true,
        (NodeTest::Name { uri: iu, local: il }, NodeTest::Name { uri: qu, local: ql }) => {
            if il != ql {
                return false;
            }
            match (iu, qu) {
                (None, _) => true, // index matches any namespace
                (Some(a), Some(b)) => a == b,
                (Some(_), None) => false,
            }
        }
        _ => false,
    }
}

/// Normalized step: axis reduced to child/descendant/attribute, with
/// `descendant-or-self::node()` folded into the next step.
#[derive(Debug, Clone, PartialEq)]
struct NStep {
    descendant: bool,
    attribute: bool,
    test: NodeTest,
}

fn normalize(path: &Path) -> Option<Vec<NStep>> {
    let mut out = Vec::new();
    let mut pending = false;
    for s in &path.steps {
        match s.axis {
            Axis::DescendantOrSelf if s.test == NodeTest::AnyKind => pending = true,
            Axis::Child | Axis::Attribute | Axis::Descendant => {
                out.push(NStep {
                    descendant: pending || s.axis == Axis::Descendant,
                    attribute: s.axis == Axis::Attribute,
                    test: s.test.clone(),
                });
                pending = false;
            }
            Axis::SelfAxis if s.test == NodeTest::AnyKind => {}
            _ => return None,
        }
    }
    if pending {
        return None;
    }
    Some(out)
}

/// Decide how `index_path` can serve `query_path` (both absolute; the query
/// path's predicates are ignored — pass the skeleton of the *value access
/// path*, i.e. the path naming the node whose value the predicate tests).
pub fn classify(index_path: &Path, query_path: &Path) -> IndexMatch {
    let (Some(ip), Some(qp)) = (normalize(index_path), normalize(query_path)) else {
        return IndexMatch::None;
    };
    if ip.is_empty() || qp.is_empty() {
        return IndexMatch::None;
    }
    if ip == qp {
        return IndexMatch::Exact;
    }
    if contains(&ip, &qp) {
        return IndexMatch::Filtering;
    }
    IndexMatch::None
}

/// Does the index pattern match every node the query pattern matches?
/// Homomorphism search with memoization: `emb(i, q)` = can index steps
/// `i..` embed into query steps `q..` with index step `i` mapped to query
/// step `q`, both terminals aligned at the end.
fn contains(ip: &[NStep], qp: &[NStep]) -> bool {
    // The terminals must align and agree on node category.
    let (it, qt) = (ip.last().unwrap(), qp.last().unwrap());
    if it.attribute != qt.attribute {
        return false;
    }
    let mut memo = vec![vec![None; qp.len() + 1]; ip.len() + 1];
    // emb(i, q): index suffix starting at i can embed into query suffix
    // starting at q, where index step i must map to SOME query step >= q
    // (exactly q when the previous index edge was a child edge).
    fn emb(
        ip: &[NStep],
        qp: &[NStep],
        i: usize,
        q: usize,
        memo: &mut Vec<Vec<Option<bool>>>,
    ) -> bool {
        if i == ip.len() {
            // All index steps mapped; valid only if the query is exhausted
            // too (terminal alignment is enforced by the caller structure).
            return q == qp.len();
        }
        if q >= qp.len() {
            return false;
        }
        if let Some(v) = memo[i][q] {
            return v;
        }
        let step = &ip[i];
        let mut ok = false;
        if step.descendant {
            // May map to any query step at position >= q.
            for target in q..qp.len() {
                if test_implies(&step.test, &qp[target].test)
                    && step.attribute == qp[target].attribute
                {
                    // Terminal must map to terminal.
                    if i == ip.len() - 1 {
                        if target == qp.len() - 1 {
                            ok = true;
                            break;
                        }
                    } else if emb(ip, qp, i + 1, target + 1, memo) {
                        ok = true;
                        break;
                    }
                }
            }
        } else {
            // Child edge: must map to exactly position q, and the query edge
            // there must itself be a child edge (a descendant query edge can
            // reach nodes deeper than one level, which the index would miss).
            if !qp[q].descendant
                && test_implies(&step.test, &qp[q].test)
                && step.attribute == qp[q].attribute
            {
                if i == ip.len() - 1 {
                    ok = q == qp.len() - 1;
                } else {
                    ok = emb(ip, qp, i + 1, q + 1, memo);
                }
            }
        }
        memo[i][q] = Some(ok);
        ok
    }
    // The first index step: child edge anchors at query position 0;
    // descendant edge may anchor anywhere (handled inside emb via the
    // descendant flag of step 0).
    emb(ip, qp, 0, 0, &mut memo)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::XPathParser;

    fn cls(index: &str, query: &str) -> IndexMatch {
        let p = XPathParser::new();
        classify(&p.parse(index).unwrap(), &p.parse(query).unwrap())
    }

    #[test]
    fn table2_case1_exact() {
        // Index /Catalog/Categories/Product/RegPrice serves the RegPrice
        // predicate of /Catalog/Categories/Product[RegPrice > 100] exactly.
        assert_eq!(
            cls(
                "/Catalog/Categories/Product/RegPrice",
                "/Catalog/Categories/Product/RegPrice"
            ),
            IndexMatch::Exact
        );
    }

    #[test]
    fn table2_case2_filtering() {
        // Index //Discount contains /Catalog/Categories/Product/Discount.
        assert_eq!(
            cls("//Discount", "/Catalog/Categories/Product/Discount"),
            IndexMatch::Filtering
        );
    }

    #[test]
    fn non_matching_paths() {
        assert_eq!(
            cls(
                "/Catalog/Product/RegPrice",
                "/Catalog/Categories/Product/RegPrice"
            ),
            IndexMatch::None
        );
        assert_eq!(cls("//Discount", "//RegPrice"), IndexMatch::None);
        // Query is MORE general than the index: the index would miss nodes.
        assert_eq!(cls("/a/b/c", "//c"), IndexMatch::None);
    }

    #[test]
    fn descendant_edge_containment() {
        assert_eq!(cls("/a//c", "/a/b/c"), IndexMatch::Filtering);
        assert_eq!(cls("//b//c", "/a/b/x/c"), IndexMatch::Filtering);
        assert_eq!(cls("/a//c", "/a//c"), IndexMatch::Exact);
        assert_eq!(cls("/a//c", "/x/b/c"), IndexMatch::None);
        // Deep pattern cannot embed into a shallower query.
        assert_eq!(cls("//a//b//c", "/a/c"), IndexMatch::None);
    }

    #[test]
    fn wildcards() {
        assert_eq!(cls("/a/*/c", "/a/b/c"), IndexMatch::Filtering);
        assert_eq!(cls("/a/*/c", "/a/*/c"), IndexMatch::Exact);
        assert_eq!(cls("/a/b/c", "/a/*/c"), IndexMatch::None);
    }

    #[test]
    fn attributes() {
        assert_eq!(cls("//@id", "/p/@id"), IndexMatch::Filtering);
        assert_eq!(cls("/p/@id", "/p/@id"), IndexMatch::Exact);
        assert_eq!(cls("//id", "/p/@id"), IndexMatch::None, "attr vs element");
        assert_eq!(cls("/p/@id", "/p/id"), IndexMatch::None);
    }

    #[test]
    fn terminal_must_align() {
        // Index on .../Product cannot serve a query for .../Product/RegPrice.
        assert_eq!(cls("/c/Product", "/c/Product/RegPrice"), IndexMatch::None);
        assert_eq!(cls("/c/Product/RegPrice", "/c/Product"), IndexMatch::None);
    }
}
