//! The query tree (§4.2, Fig. 6).
//!
//! "Like many other XPath algorithms, such as TurboXPath, QuickXScan models a
//! path expression with a query tree … each node is labeled by the name test
//! or kind test, and the axis of each step is differentiated by a single-line
//! edge for child axis or a double-line edge for descendant axis."
//!
//! Compilation folds `descendant-or-self::node()` steps into descendant
//! edges, merges `self::node()` steps into their context, and hangs every
//! predicate's operand paths off the step that owns the predicate, so the
//! evaluator sees exactly three edge kinds: child, descendant, attribute.

use crate::ast::{Axis, CmpOp, Expr, NodeTest, Operand, Path};
use crate::error::{Result, XPathError};
use std::fmt;

/// Edge kind from a query node to its parent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QAxis {
    /// Single-line edge (child axis).
    Child,
    /// Double-line edge (descendant axis).
    Descendant,
    /// Attribute edge.
    Attribute,
}

/// Where values matched by a node flow: to the main result sequence or into
/// one operand slot of an owning node's predicate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Route {
    /// On the main path.
    Main,
    /// On an operand path of a predicate.
    Operand {
        /// Query node whose predicate consumes the values.
        owner: usize,
        /// Operand slot index within the owner.
        idx: usize,
    },
}

/// A compiled predicate operand.
#[derive(Debug, Clone, PartialEq)]
pub enum POp {
    /// A string literal.
    Literal(String),
    /// A numeric literal.
    Number(f64),
    /// The value sequence collected in operand slot `.0`.
    Seq(usize),
    /// The cardinality of operand slot `.0`.
    Count(usize),
}

/// A compiled predicate expression (evaluated when the owning instance pops).
#[derive(Debug, Clone, PartialEq)]
pub enum PExpr {
    /// Disjunction.
    Or(Box<PExpr>, Box<PExpr>),
    /// Conjunction.
    And(Box<PExpr>, Box<PExpr>),
    /// Negation.
    Not(Box<PExpr>),
    /// Existential general comparison.
    Cmp(CmpOp, POp, POp),
    /// Non-emptiness of operand slot `.0`.
    Exists(usize),
}

/// One node of the query tree.
#[derive(Debug, Clone)]
pub struct QueryNode {
    /// Parent query node (`None` only for the root).
    pub parent: Option<usize>,
    /// Edge kind to the parent.
    pub axis: QAxis,
    /// The name/kind test.
    pub test: NodeTest,
    /// Predicates owned by this node.
    pub predicates: Vec<PExpr>,
    /// Number of operand slots this node's predicates consume.
    pub operand_slots: usize,
    /// Value routing for matches of this node.
    pub route: Route,
    /// Terminal of the main path or of an operand path: accumulates the
    /// node's string value.
    pub produces_value: bool,
    /// Operand slots fed by this node's *own* string value (a `.` operand,
    /// e.g. `b[. = "x"]`).
    pub self_value_operands: Vec<usize>,
    /// Child query nodes.
    pub children: Vec<usize>,
}

/// The compiled query tree. Node 0 is the root step `r` (the document).
#[derive(Debug, Clone)]
pub struct QueryTree {
    /// All nodes; index = node id.
    pub nodes: Vec<QueryNode>,
    /// The result query node (end of the main path).
    pub result: usize,
}

impl QueryTree {
    /// Compile an absolute path expression.
    pub fn compile(path: &Path) -> Result<QueryTree> {
        if !path.absolute {
            return Err(XPathError::Unsupported {
                message: "queries must be absolute paths".into(),
            });
        }
        let mut tree = QueryTree {
            nodes: vec![QueryNode {
                parent: None,
                axis: QAxis::Child,
                test: NodeTest::AnyKind,
                predicates: Vec::new(),
                operand_slots: 0,
                route: Route::Main,
                produces_value: false,
                self_value_operands: Vec::new(),
                children: Vec::new(),
            }],
            result: 0,
        };
        let terminal = tree.compile_steps(&path.steps, 0, Route::Main)?;
        if terminal == 0 {
            return Err(XPathError::Unsupported {
                message: "query selects only the document root".into(),
            });
        }
        tree.result = terminal;
        tree.nodes[terminal].produces_value = true;
        Ok(tree)
    }

    /// Number of query nodes — the paper's `|Q|`.
    pub fn size(&self) -> usize {
        self.nodes.len()
    }

    fn add_node(&mut self, parent: usize, axis: QAxis, test: NodeTest, route: Route) -> usize {
        let id = self.nodes.len();
        self.nodes.push(QueryNode {
            parent: Some(parent),
            axis,
            test,
            predicates: Vec::new(),
            operand_slots: 0,
            route,
            produces_value: false,
            self_value_operands: Vec::new(),
            children: Vec::new(),
        });
        self.nodes[parent].children.push(id);
        id
    }

    fn compile_steps(
        &mut self,
        steps: &[crate::ast::Step],
        context: usize,
        route: Route,
    ) -> Result<usize> {
        let mut cur = context;
        let mut pending_desc = false;
        for step in steps {
            match step.axis {
                Axis::SelfAxis => {
                    if pending_desc {
                        return Err(XPathError::Unsupported {
                            message: "'//.' is not supported".into(),
                        });
                    }
                    if step.test != NodeTest::AnyKind {
                        return Err(XPathError::Unsupported {
                            message: "self axis with a name test is not supported".into(),
                        });
                    }
                    // `.`: predicates attach to the context node.
                    for p in &step.predicates {
                        let compiled = self.compile_expr(p, cur)?;
                        self.nodes[cur].predicates.push(compiled);
                    }
                }
                Axis::DescendantOrSelf => {
                    if step.test == NodeTest::AnyKind && step.predicates.is_empty() {
                        pending_desc = true;
                    } else {
                        return Err(XPathError::Unsupported {
                            message:
                                "descendant-or-self with a name test or predicates is not supported (use descendant::)"
                                    .into(),
                        });
                    }
                }
                Axis::Child | Axis::Descendant | Axis::Attribute => {
                    if matches!(self.nodes[cur].axis, QAxis::Attribute) && cur != context {
                        return Err(XPathError::Unsupported {
                            message: "attributes have no children".into(),
                        });
                    }
                    let qaxis = match step.axis {
                        Axis::Attribute => {
                            if pending_desc {
                                // `//@x` ≡ `descendant::*/attribute::x`:
                                // insert the implicit element step.
                                let elem =
                                    self.add_node(cur, QAxis::Descendant, NodeTest::AnyName, route);
                                cur = elem;
                            }
                            QAxis::Attribute
                        }
                        Axis::Descendant => QAxis::Descendant,
                        Axis::Child if pending_desc => QAxis::Descendant,
                        Axis::Child => QAxis::Child,
                        _ => unreachable!(),
                    };
                    pending_desc = false;
                    let id = self.add_node(cur, qaxis, step.test.clone(), route);
                    for p in &step.predicates {
                        let compiled = self.compile_expr(p, id)?;
                        self.nodes[id].predicates.push(compiled);
                    }
                    cur = id;
                }
                Axis::Parent => {
                    return Err(XPathError::Unsupported {
                        message: "parent axis survived rewrite (internal error)".into(),
                    })
                }
            }
        }
        if pending_desc {
            return Err(XPathError::Unsupported {
                message: "path may not end with '//'".into(),
            });
        }
        Ok(cur)
    }

    fn add_operand_path(&mut self, path: &Path, owner: usize) -> Result<usize> {
        if path.absolute {
            return Err(XPathError::Unsupported {
                message: "absolute paths inside predicates are not supported".into(),
            });
        }
        let idx = self.nodes[owner].operand_slots;
        self.nodes[owner].operand_slots += 1;
        let terminal = self.compile_steps(&path.steps, owner, Route::Operand { owner, idx })?;
        if terminal == owner {
            // A pure `.` operand: the owner's own string value feeds the slot.
            self.nodes[owner].self_value_operands.push(idx);
        } else {
            self.nodes[terminal].produces_value = true;
        }
        Ok(idx)
    }

    fn compile_operand(&mut self, op: &Operand, owner: usize) -> Result<POp> {
        Ok(match op {
            Operand::Literal(s) => POp::Literal(s.clone()),
            Operand::Number(n) => POp::Number(*n),
            Operand::Path(p) => POp::Seq(self.add_operand_path(p, owner)?),
            Operand::Count(p) => POp::Count(self.add_operand_path(p, owner)?),
        })
    }

    fn compile_expr(&mut self, e: &Expr, owner: usize) -> Result<PExpr> {
        Ok(match e {
            Expr::Or(a, b) => PExpr::Or(
                Box::new(self.compile_expr(a, owner)?),
                Box::new(self.compile_expr(b, owner)?),
            ),
            Expr::And(a, b) => PExpr::And(
                Box::new(self.compile_expr(a, owner)?),
                Box::new(self.compile_expr(b, owner)?),
            ),
            Expr::Not(a) => PExpr::Not(Box::new(self.compile_expr(a, owner)?)),
            Expr::Cmp(op, l, r) => PExpr::Cmp(
                *op,
                self.compile_operand(l, owner)?,
                self.compile_operand(r, owner)?,
            ),
            Expr::Exists(p) => PExpr::Exists(self.add_operand_path(p, owner)?),
        })
    }

    /// Render the tree in the style of Fig. 6: `=` edges are descendant axis,
    /// `-` edges are child axis, `@` marks attribute edges, `*` marks the
    /// result node.
    pub fn to_ascii(&self) -> String {
        let mut out = String::new();
        self.render(0, 0, &mut out);
        out
    }

    fn render(&self, id: usize, depth: usize, out: &mut String) {
        let n = &self.nodes[id];
        for _ in 0..depth {
            out.push_str("  ");
        }
        let edge = match n.axis {
            _ if id == 0 => "r",
            QAxis::Child => "-",
            QAxis::Descendant => "=",
            QAxis::Attribute => "@",
        };
        out.push_str(edge);
        if id != 0 {
            out.push(' ');
            out.push_str(&n.test.to_string());
        }
        if id == self.result {
            out.push_str(" *");
        }
        if let Route::Operand { owner, idx } = n.route {
            out.push_str(&format!(" (operand {idx} of q{owner})"));
        }
        if !n.predicates.is_empty() {
            out.push_str(&format!(" [{} predicate(s)]", n.predicates.len()));
        }
        out.push('\n');
        for &c in &n.children {
            self.render(c, depth + 1, out);
        }
    }
}

impl fmt::Display for QueryTree {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_ascii())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::XPathParser;

    fn compile(s: &str) -> QueryTree {
        QueryTree::compile(&XPathParser::new().parse(s).unwrap()).unwrap()
    }

    #[test]
    fn linear_path() {
        let t = compile("/Catalog/Categories/Product");
        assert_eq!(t.size(), 4); // root + 3 steps
        assert_eq!(t.result, 3);
        assert!(t.nodes[3].produces_value);
        assert_eq!(t.nodes[1].axis, QAxis::Child);
    }

    #[test]
    fn double_slash_folds_to_descendant_edge() {
        let t = compile("/catalog//productname");
        assert_eq!(t.size(), 3);
        assert_eq!(t.nodes[2].axis, QAxis::Descendant);
        let t = compile("//Discount");
        assert_eq!(t.size(), 2);
        assert_eq!(t.nodes[1].axis, QAxis::Descendant);
    }

    #[test]
    fn fig6_query_tree_shape() {
        // //s[.//t = "XML" and f/@w > 300] — Fig. 6(a): r, s (descendant),
        // with operand subtrees t (descendant of s) and f/@w (child chain).
        let t = compile(r#"//s[.//t = "XML" and f/@w > 300]"#);
        // Nodes: root, s, t, f, @w.
        assert_eq!(t.size(), 5);
        let s = 1;
        assert_eq!(t.nodes[s].axis, QAxis::Descendant);
        assert_eq!(t.nodes[s].operand_slots, 2);
        assert_eq!(t.result, s);
        // t hangs off s with a descendant edge, routed to operand 0.
        let tq = &t.nodes[2];
        assert_eq!(tq.axis, QAxis::Descendant);
        assert_eq!(tq.route, Route::Operand { owner: s, idx: 0 });
        assert!(tq.produces_value);
        // f is a child of s; @w is an attribute edge under f, operand 1.
        let f = &t.nodes[3];
        assert_eq!(f.axis, QAxis::Child);
        let w = &t.nodes[4];
        assert_eq!(w.axis, QAxis::Attribute);
        assert_eq!(w.route, Route::Operand { owner: s, idx: 1 });
        // The predicate is one And at s.
        assert_eq!(t.nodes[s].predicates.len(), 1);
        assert!(matches!(t.nodes[s].predicates[0], PExpr::And(_, _)));
        // Fig. 6 rendering mentions the descendant edges.
        let ascii = t.to_ascii();
        assert!(ascii.contains("= s"), "{ascii}");
        assert!(ascii.contains("= t"), "{ascii}");
        assert!(ascii.contains("@ w"), "{ascii}");
    }

    #[test]
    fn dot_predicate_attaches_to_context() {
        let t = compile(r#"/a/b[. = "x"]"#);
        // Predicate written on b via implicit self: owner is b itself.
        assert_eq!(t.nodes[2].predicates.len(), 1);
    }

    #[test]
    fn count_operand() {
        let t = compile("/order[count(item) >= 2]");
        let order = &t.nodes[1];
        assert_eq!(order.operand_slots, 1);
        assert!(matches!(
            &order.predicates[0],
            PExpr::Cmp(CmpOp::Ge, POp::Count(0), POp::Number(_))
        ));
    }

    #[test]
    fn unsupported_shapes_rejected() {
        let p = XPathParser::new();
        let rel = p.parse("/a").map(|mut path| {
            path.absolute = false;
            path
        });
        assert!(QueryTree::compile(&rel.unwrap()).is_err(), "relative query");
        // `//@id` compiles via the implicit descendant::* element step.
        let ok = p.parse("//@id").unwrap();
        let t = QueryTree::compile(&ok).unwrap();
        // root + implicit * + @id.
        assert_eq!(t.size(), 3);
        assert_eq!(t.nodes[1].test, crate::ast::NodeTest::AnyName);
        assert_eq!(t.nodes[2].axis, QAxis::Attribute);
    }

    #[test]
    fn nested_predicates() {
        let t = compile(r#"//s[.//t[u = 1] = "XML"]"#);
        // t owns its own nested predicate with operand u.
        let tq = t
            .nodes
            .iter()
            .position(|n| n.test.to_string() == "t")
            .unwrap();
        assert_eq!(t.nodes[tq].predicates.len(), 1);
        assert_eq!(t.nodes[tq].operand_slots, 1);
    }
}
