//! XPath compilation and evaluation errors.

use std::fmt;

/// Result alias for the XPath crate.
pub type Result<T> = std::result::Result<T, XPathError>;

/// Errors from XPath parsing, compilation, or evaluation.
#[derive(Debug, Clone, PartialEq)]
#[allow(missing_docs)] // variant fields are self-descriptive
pub enum XPathError {
    /// Syntax error in the path expression.
    Parse { offset: usize, message: String },
    /// The expression is outside the supported fragment.
    Unsupported { message: String },
    /// Malformed input during evaluation (e.g. a broken event stream).
    Eval { message: String },
}

impl fmt::Display for XPathError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            XPathError::Parse { offset, message } => {
                write!(f, "XPath parse error at offset {offset}: {message}")
            }
            XPathError::Unsupported { message } => write!(f, "unsupported XPath: {message}"),
            XPathError::Eval { message } => write!(f, "XPath evaluation error: {message}"),
        }
    }
}

impl std::error::Error for XPathError {}

impl From<rx_xml::XmlError> for XPathError {
    fn from(e: rx_xml::XmlError) -> Self {
        XPathError::Eval {
            message: e.to_string(),
        }
    }
}
