//! XPath abstract syntax.
//!
//! The supported fragment is the paper's (§4.2): the five forward axes —
//! child, attribute, descendant, self, descendant-or-self — plus the parent
//! axis via query rewrite \[24\], with predicates built from comparisons,
//! `and`/`or`/`not()`, nested relative paths, `count()` and `exists()`.

use std::fmt;

/// An XPath axis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Axis {
    /// `child::` (the default).
    Child,
    /// `descendant::`.
    Descendant,
    /// `descendant-or-self::` (what `//` expands to).
    DescendantOrSelf,
    /// `self::` (`.`).
    SelfAxis,
    /// `attribute::` (`@`).
    Attribute,
    /// `parent::` (`..`) — supported by rewrite only.
    Parent,
}

/// A node test.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NodeTest {
    /// A name test, optionally namespace-qualified (`prefix` resolved at
    /// parse time against supplied bindings).
    Name {
        /// Namespace URI; `None` = match any namespace, `Some("")` = no
        /// namespace.
        uri: Option<String>,
        /// Local name.
        local: String,
    },
    /// `*` — any element (or any attribute on the attribute axis).
    AnyName,
    /// `text()`.
    Text,
    /// `comment()`.
    Comment,
    /// `node()` — any node kind.
    AnyKind,
}

/// One location step.
#[derive(Debug, Clone, PartialEq)]
pub struct Step {
    /// The axis.
    pub axis: Axis,
    /// The node test.
    pub test: NodeTest,
    /// Zero or more predicates.
    pub predicates: Vec<Expr>,
}

/// A location path.
#[derive(Debug, Clone, PartialEq)]
pub struct Path {
    /// True for absolute paths (`/…` or `//…`).
    pub absolute: bool,
    /// The steps.
    pub steps: Vec<Step>,
}

/// Comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl CmpOp {
    /// Evaluate against an [`std::cmp::Ordering`].
    pub fn test(self, ord: std::cmp::Ordering) -> bool {
        use std::cmp::Ordering::*;
        matches!(
            (self, ord),
            (CmpOp::Eq, Equal)
                | (CmpOp::Ne, Less)
                | (CmpOp::Ne, Greater)
                | (CmpOp::Lt, Less)
                | (CmpOp::Le, Less)
                | (CmpOp::Le, Equal)
                | (CmpOp::Gt, Greater)
                | (CmpOp::Ge, Greater)
                | (CmpOp::Ge, Equal)
        )
    }

    /// The operator with operands swapped (`a < b` ⇔ `b > a`).
    pub fn flip(self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Eq,
            CmpOp::Ne => CmpOp::Ne,
            CmpOp::Lt => CmpOp::Gt,
            CmpOp::Le => CmpOp::Ge,
            CmpOp::Gt => CmpOp::Lt,
            CmpOp::Ge => CmpOp::Le,
        }
    }
}

/// A predicate expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Logical disjunction.
    Or(Box<Expr>, Box<Expr>),
    /// Logical conjunction.
    And(Box<Expr>, Box<Expr>),
    /// Negation (`not(…)`).
    Not(Box<Expr>),
    /// General comparison with existential semantics over node sequences.
    Cmp(CmpOp, Operand, Operand),
    /// Truth of a relative path (non-empty result), e.g. `[Discount]`.
    Exists(Path),
}

/// A comparison operand.
#[derive(Debug, Clone, PartialEq)]
pub enum Operand {
    /// A string literal.
    Literal(String),
    /// A numeric literal.
    Number(f64),
    /// A relative path (sequence of node string-values).
    Path(Path),
    /// `count(path)`.
    Count(Path),
}

impl fmt::Display for NodeTest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NodeTest::Name {
                uri: Some(u),
                local,
            } if !u.is_empty() => {
                write!(f, "{{{u}}}{local}")
            }
            NodeTest::Name { local, .. } => write!(f, "{local}"),
            NodeTest::AnyName => write!(f, "*"),
            NodeTest::Text => write!(f, "text()"),
            NodeTest::Comment => write!(f, "comment()"),
            NodeTest::AnyKind => write!(f, "node()"),
        }
    }
}

impl fmt::Display for Step {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.axis {
            Axis::Child => {}
            Axis::Descendant => write!(f, "descendant::")?,
            Axis::DescendantOrSelf => write!(f, "descendant-or-self::")?,
            Axis::SelfAxis => write!(f, "self::")?,
            Axis::Attribute => write!(f, "@")?,
            Axis::Parent => write!(f, "parent::")?,
        }
        write!(f, "{}", self.test)?;
        for p in &self.predicates {
            write!(f, "[{p}]")?;
        }
        Ok(())
    }
}

impl fmt::Display for Path {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, s) in self.steps.iter().enumerate() {
            if i > 0 || self.absolute {
                write!(f, "/")?;
            }
            write!(f, "{s}")?;
        }
        Ok(())
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Or(a, b) => write!(f, "({a} or {b})"),
            Expr::And(a, b) => write!(f, "({a} and {b})"),
            Expr::Not(e) => write!(f, "not({e})"),
            Expr::Cmp(op, a, b) => {
                let sym = match op {
                    CmpOp::Eq => "=",
                    CmpOp::Ne => "!=",
                    CmpOp::Lt => "<",
                    CmpOp::Le => "<=",
                    CmpOp::Gt => ">",
                    CmpOp::Ge => ">=",
                };
                write!(f, "{a} {sym} {b}")
            }
            Expr::Exists(p) => write!(f, "{p}"),
        }
    }
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Literal(s) => write!(f, "\"{s}\""),
            Operand::Number(n) => write!(f, "{n}"),
            Operand::Path(p) => write!(f, "{p}"),
            Operand::Count(p) => write!(f, "count({p})"),
        }
    }
}

impl Path {
    /// A linear path (no predicates anywhere)? Index definitions require this
    /// (§3.3: "a simple XPath expression without predicates").
    pub fn is_simple(&self) -> bool {
        self.steps.iter().all(|s| {
            s.predicates.is_empty()
                && matches!(
                    s.axis,
                    Axis::Child | Axis::Descendant | Axis::DescendantOrSelf | Axis::Attribute
                )
        })
    }

    /// Strip all predicates, yielding the structural skeleton (used when
    /// matching query paths against index paths).
    pub fn skeleton(&self) -> Path {
        Path {
            absolute: self.absolute,
            steps: self
                .steps
                .iter()
                .map(|s| Step {
                    axis: s.axis,
                    test: s.test.clone(),
                    predicates: Vec::new(),
                })
                .collect(),
        }
    }
}
