//! Baseline XPath evaluators the paper compares QuickXScan against (§4.2):
//!
//! * [`DomXPath`] — a recursive evaluator over a materialized DOM tree ("some
//!   DOM-based algorithm", reported orders of magnitude slower end-to-end
//!   because of tree construction);
//! * [`NaiveStreamMatcher`] — a streaming matcher in the style of pre-stack
//!   automaton algorithms \[17\] \[26\] that tracks every **partial match
//!   instance** (binding of a query prefix to concrete ancestors)
//!   independently. On a recursive document, a path like `//a//a//a` makes
//!   its live-instance count grow combinatorially in the recursion degree r —
//!   the exponential active-state blowup of Fig. 7(c) that QuickXScan's
//!   stack-top sharing avoids.
//!
//! Both produce the same results as QuickXScan (differential tests rely on
//! this); only their cost profiles differ.

use crate::ast::{CmpOp, NodeTest};
use crate::error::{Result, XPathError};
use crate::query_tree::{PExpr, POp, QAxis, QueryTree, Route};
use crate::quickxscan::ResultItem;
use rx_xml::dom::{DomId, DomKind, DomTree};
use rx_xml::event::{Event, EventSink};
use rx_xml::name::{NameDict, QNameId};

// ---------------------------------------------------------------------------
// DOM-based evaluation
// ---------------------------------------------------------------------------

/// Recursive DOM evaluator for compiled query trees.
pub struct DomXPath<'q, 'd> {
    tree: &'q QueryTree,
    dict: &'d NameDict,
}

impl<'q, 'd> DomXPath<'q, 'd> {
    /// Bind an evaluator.
    pub fn new(tree: &'q QueryTree, dict: &'d NameDict) -> Self {
        DomXPath { tree, dict }
    }

    /// Evaluate over a DOM, returning result string values in document order.
    pub fn eval(&self, dom: &DomTree) -> Vec<String> {
        let matches = self.eval_node_set(dom, DomTree::ROOT, self.tree.result);
        matches
            .into_iter()
            .map(|m| self.string_of(dom, m))
            .collect()
    }

    fn string_of(&self, dom: &DomTree, m: Match) -> String {
        match m {
            Match::Node(id) => dom.string_value(id),
            Match::Attr(_, v) => v,
        }
    }

    /// All matches of query node `q` given that `q`'s parent chain is
    /// anchored at the document root.
    fn eval_node_set(&self, dom: &DomTree, _root: DomId, q: usize) -> Vec<Match> {
        // Build the chain root → … → q.
        let mut chain = vec![q];
        let mut cur = q;
        while let Some(p) = self.tree.nodes[cur].parent {
            chain.push(p);
            cur = p;
        }
        chain.reverse();
        // Walk the chain from the document node.
        let mut frontier: Vec<Match> = vec![Match::Node(DomTree::ROOT)];
        for win in chain.windows(2) {
            let step = win[1];
            let mut next = Vec::new();
            for m in &frontier {
                let Match::Node(ctx) = m else { continue };
                self.step_matches(dom, *ctx, step, &mut next);
            }
            // Document order + dedup (the arena assigns ids in document
            // order, so sorting by id restores it).
            next.sort();
            next.dedup();
            frontier = next;
        }
        frontier
    }

    fn step_matches(&self, dom: &DomTree, ctx: DomId, q: usize, out: &mut Vec<Match>) {
        let node = &self.tree.nodes[q];
        match node.axis {
            QAxis::Attribute => {
                if let DomKind::Element { attrs, .. } = &dom.node(ctx).kind {
                    for (aname, value) in attrs {
                        if self.attr_test(&node.test, *aname) {
                            out.push(Match::Attr(ctx, value.clone()));
                        }
                    }
                }
            }
            QAxis::Child => {
                for &c in dom.children(ctx) {
                    if self.node_test(dom, c, &node.test) && self.predicates_hold(dom, c, q) {
                        out.push(Match::Node(c));
                    }
                }
            }
            QAxis::Descendant => {
                self.walk_descendants(dom, ctx, &mut |c| {
                    if self.node_test(dom, c, &node.test) && self.predicates_hold(dom, c, q) {
                        out.push(Match::Node(c));
                    }
                });
            }
        }
    }

    fn walk_descendants(&self, dom: &DomTree, ctx: DomId, f: &mut impl FnMut(DomId)) {
        for &c in dom.children(ctx) {
            f(c);
            self.walk_descendants(dom, c, f);
        }
    }

    fn node_test(&self, dom: &DomTree, id: DomId, test: &NodeTest) -> bool {
        match (&dom.node(id).kind, test) {
            (DomKind::Element { .. }, NodeTest::AnyName | NodeTest::AnyKind) => true,
            (DomKind::Element { name, .. }, NodeTest::Name { uri, local }) => match uri {
                Some(u) => self.dict.matches(*name, u, local),
                None => self.dict.matches_local(*name, local),
            },
            (DomKind::Text(_), NodeTest::Text | NodeTest::AnyKind) => true,
            (DomKind::Comment(_), NodeTest::Comment | NodeTest::AnyKind) => true,
            (DomKind::Pi { .. }, NodeTest::AnyKind) => true,
            _ => false,
        }
    }

    fn attr_test(&self, test: &NodeTest, name: QNameId) -> bool {
        match test {
            NodeTest::AnyName | NodeTest::AnyKind => true,
            NodeTest::Name { uri, local } => match uri {
                Some(u) => self.dict.matches(name, u, local),
                None => self.dict.matches_local(name, local),
            },
            _ => false,
        }
    }

    fn predicates_hold(&self, dom: &DomTree, ctx: DomId, q: usize) -> bool {
        let node = &self.tree.nodes[q];
        if node.predicates.is_empty() {
            return true;
        }
        // Gather operand sequences rooted at ctx.
        let mut operands: Vec<Vec<ResultItem>> = vec![Vec::new(); node.operand_slots];
        for &idx in &node.self_value_operands {
            operands[idx].push(ResultItem::of(dom.string_value(ctx)));
        }
        for &c in &node.children {
            if let Route::Operand { owner, idx } = self.tree.nodes[c].route {
                if owner == q {
                    let mut out = Vec::new();
                    self.collect_operand(dom, ctx, c, &mut out);
                    operands[idx] = out;
                }
            }
        }
        node.predicates.iter().all(|p| eval_pexpr_dom(p, &operands))
    }

    fn collect_operand(&self, dom: &DomTree, ctx: DomId, q: usize, out: &mut Vec<ResultItem>) {
        let mut step_out = Vec::new();
        self.step_matches(dom, ctx, q, &mut step_out);
        let node = &self.tree.nodes[q];
        // Continue down non-operand children of q belonging to the same chain.
        let chain_children: Vec<usize> = node
            .children
            .iter()
            .copied()
            .filter(|&c| self.tree.nodes[c].route == node.route)
            .collect();
        for m in step_out {
            if chain_children.is_empty() {
                out.push(ResultItem::of(self.string_of(dom, m.clone())));
            } else if let Match::Node(id) = m {
                for &c in &chain_children {
                    self.collect_operand(dom, id, c, out);
                }
            }
        }
    }
}

#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Debug)]
enum Match {
    Node(DomId),
    Attr(DomId, String),
}

fn eval_pexpr_dom(e: &PExpr, operands: &[Vec<ResultItem>]) -> bool {
    // Same semantics as the streaming evaluator; re-implemented here so the
    // baselines stay independent (differential testing would be meaningless
    // if they shared evaluation code).
    match e {
        PExpr::Or(a, b) => eval_pexpr_dom(a, operands) || eval_pexpr_dom(b, operands),
        PExpr::And(a, b) => eval_pexpr_dom(a, operands) && eval_pexpr_dom(b, operands),
        PExpr::Not(a) => !eval_pexpr_dom(a, operands),
        PExpr::Exists(i) => !operands[*i].is_empty(),
        PExpr::Cmp(op, l, r) => cmp_dom(*op, l, r, operands),
    }
}

fn cmp_dom(op: CmpOp, l: &POp, r: &POp, operands: &[Vec<ResultItem>]) -> bool {
    let num = |o: &POp| -> Option<f64> {
        match o {
            POp::Number(n) => Some(*n),
            POp::Literal(s) => s.trim().parse().ok(),
            POp::Count(i) => Some(operands[*i].len() as f64),
            POp::Seq(_) => None,
        }
    };
    match (l, r) {
        (POp::Seq(i), other) => match other {
            POp::Literal(s) if matches!(op, CmpOp::Eq | CmpOp::Ne) => {
                operands[*i].iter().any(|v| match op {
                    CmpOp::Eq => v.value == *s,
                    _ => v.value != *s,
                })
            }
            POp::Seq(j) => operands[*i].iter().any(|a| {
                operands[*j].iter().any(|b| match op {
                    CmpOp::Eq => a.value == b.value,
                    CmpOp::Ne => a.value != b.value,
                    _ => match (a.value.trim().parse::<f64>(), b.value.trim().parse::<f64>()) {
                        (Ok(x), Ok(y)) => x.partial_cmp(&y).is_some_and(|o| op.test(o)),
                        _ => false,
                    },
                })
            }),
            _ => {
                let Some(rhs) = num(other) else { return false };
                operands[*i].iter().any(|v| {
                    v.value
                        .trim()
                        .parse::<f64>()
                        .is_ok_and(|x| x.partial_cmp(&rhs).is_some_and(|o| op.test(o)))
                })
            }
        },
        (other, POp::Seq(_)) => cmp_dom(op.flip(), r, other, operands),
        (a, b) => match (a, b) {
            (POp::Literal(x), POp::Literal(y)) if matches!(op, CmpOp::Eq | CmpOp::Ne) => match op {
                CmpOp::Eq => x == y,
                _ => x != y,
            },
            _ => match (num(a), num(b)) {
                (Some(x), Some(y)) => x.partial_cmp(&y).is_some_and(|o| op.test(o)),
                _ => false,
            },
        },
    }
}

// ---------------------------------------------------------------------------
// Naive streaming matcher (per-partial-match instances)
// ---------------------------------------------------------------------------

/// A streaming matcher for **linear, predicate-free** paths that keeps one
/// live object per partial match — the unshared representation whose state
/// count blows up on recursive documents (Fig. 7(c)). Supports exactly the
/// fragment the Fig. 7 comparison needs (child/descendant chains of name
/// tests).
pub struct NaiveStreamMatcher<'q, 'd> {
    tree: &'q QueryTree,
    /// The linear chain of query nodes (root excluded).
    chain: Vec<usize>,
    dict: &'d NameDict,
    /// Live partial matches: each holds the index of the next step to match
    /// and the depth at which its last step matched.
    partials: Vec<Partial>,
    depth: u32,
    /// Result values (string values accumulated for complete matches).
    results: Vec<String>,
    open_accums: Vec<OpenResult>,
    /// Peak number of live partial-match instances.
    pub peak_instances: usize,
    /// Total instances ever created.
    pub instances_created: u64,
}

#[derive(Clone)]
struct Partial {
    /// Next chain position to match.
    next: usize,
    /// Depth at which the previous step matched.
    depth: u32,
}

struct OpenResult {
    depth: u32,
    text: String,
    /// How many partials completed on this element (duplicates!). The naive
    /// algorithm has to deduplicate explicitly.
    count: usize,
}

impl<'q, 'd> NaiveStreamMatcher<'q, 'd> {
    /// Build from a compiled query tree; fails if the query is not a linear
    /// predicate-free element path.
    pub fn new(tree: &'q QueryTree, dict: &'d NameDict) -> Result<Self> {
        let mut chain = Vec::new();
        let mut cur = 0usize;
        loop {
            let node = &tree.nodes[cur];
            if !node.predicates.is_empty() || node.operand_slots > 0 {
                return Err(XPathError::Unsupported {
                    message: "naive matcher supports predicate-free paths only".into(),
                });
            }
            match node.children.len() {
                0 => break,
                1 => {
                    cur = node.children[0];
                    if tree.nodes[cur].axis == QAxis::Attribute {
                        return Err(XPathError::Unsupported {
                            message: "naive matcher supports element paths only".into(),
                        });
                    }
                    chain.push(cur);
                }
                _ => {
                    return Err(XPathError::Unsupported {
                        message: "naive matcher supports linear paths only".into(),
                    })
                }
            }
        }
        if chain.is_empty() {
            return Err(XPathError::Unsupported {
                message: "empty query".into(),
            });
        }
        Ok(NaiveStreamMatcher {
            tree,
            chain,
            dict,
            partials: vec![Partial { next: 0, depth: 0 }],
            depth: 0,
            results: Vec::new(),
            open_accums: Vec::new(),
            peak_instances: 0,
            instances_created: 1,
        })
    }

    /// Finish, returning (results, peak instance count).
    pub fn finish(self) -> (Vec<String>, usize) {
        (self.results, self.peak_instances)
    }

    fn test(&self, q: usize, name: QNameId) -> bool {
        match &self.tree.nodes[q].test {
            NodeTest::AnyName | NodeTest::AnyKind => true,
            NodeTest::Name { uri, local } => match uri {
                Some(u) => self.dict.matches(name, u, local),
                None => self.dict.matches_local(name, local),
            },
            _ => false,
        }
    }
}

impl EventSink for NaiveStreamMatcher<'_, '_> {
    fn event(&mut self, ev: Event<'_>) -> rx_xml::Result<()> {
        match ev {
            Event::StartElement { name } => {
                self.depth += 1;
                // Every live partial may spawn an extended copy — the naive
                // algorithms keep both (no stack sharing).
                let mut spawned = Vec::new();
                let mut completions = 0usize;
                for p in &self.partials {
                    if p.next >= self.chain.len() {
                        continue;
                    }
                    let q = self.chain[p.next];
                    let axis_ok = match self.tree.nodes[q].axis {
                        QAxis::Child => p.depth + 1 == self.depth,
                        QAxis::Descendant => p.depth < self.depth,
                        QAxis::Attribute => false,
                    };
                    if axis_ok && self.test(q, name) {
                        if p.next + 1 == self.chain.len() {
                            completions += 1;
                        }
                        spawned.push(Partial {
                            next: p.next + 1,
                            depth: self.depth,
                        });
                    }
                }
                self.instances_created += spawned.len() as u64;
                self.partials.extend(spawned);
                self.peak_instances = self.peak_instances.max(self.partials.len());
                if completions > 0 {
                    // The element matched (possibly through many bindings) —
                    // emit its string value ONCE (explicit deduplication).
                    self.open_accums.push(OpenResult {
                        depth: self.depth,
                        text: String::new(),
                        count: completions,
                    });
                }
            }
            Event::EndElement => {
                if let Some(top) = self.open_accums.last() {
                    if top.depth == self.depth {
                        // Text events already fed every open accumulator, so
                        // the parent's string value is complete without
                        // re-adding this element's text.
                        let done = self.open_accums.pop().expect("checked above");
                        let _ = done.count; // duplicates discarded
                        self.results.push(done.text);
                    }
                }
                // Retire partials whose last step matched at this depth.
                self.partials
                    .retain(|p| p.depth < self.depth || p.next == 0);
                self.depth -= 1;
            }
            Event::Text { value, .. } => {
                for a in &mut self.open_accums {
                    a.text.push_str(value);
                }
            }
            _ => {}
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::XPathParser;
    use crate::query_tree::QueryTree;
    use crate::quickxscan::scan_str;

    fn dom_eval(query: &str, doc: &str) -> Vec<String> {
        let path = XPathParser::new().parse(query).unwrap();
        let tree = QueryTree::compile(&path).unwrap();
        let dict = NameDict::new();
        let dom = DomTree::parse(doc, &dict).unwrap();
        DomXPath::new(&tree, &dict).eval(&dom)
    }

    fn naive_eval(query: &str, doc: &str) -> (Vec<String>, usize) {
        let path = XPathParser::new().parse(query).unwrap();
        let tree = QueryTree::compile(&path).unwrap();
        let dict = NameDict::new();
        let mut m = NaiveStreamMatcher::new(&tree, &dict).unwrap();
        rx_xml::Parser::new(&dict).parse(doc, &mut m).unwrap();
        m.finish()
    }

    fn qxs_eval(query: &str, doc: &str) -> Vec<String> {
        let path = XPathParser::new().parse(query).unwrap();
        let tree = QueryTree::compile(&path).unwrap();
        let dict = NameDict::new();
        let (items, _) = scan_str(&tree, &dict, doc).unwrap();
        items.into_iter().map(|i| i.value).collect()
    }

    #[test]
    fn dom_agrees_with_quickxscan() {
        let docs = [
            "<a><b>1</b><c><b>2</b></c></a>",
            "<a><a><b>x</b></a><b>y</b></a>",
            r#"<Catalog><Categories><Product><RegPrice>150</RegPrice></Product>
               <Product><RegPrice>50</RegPrice></Product></Categories></Catalog>"#,
        ];
        let queries = [
            "/a/b",
            "//b",
            "//a//b",
            "/Catalog/Categories/Product[RegPrice > 100]",
            "/Catalog/Categories/Product[RegPrice > 100]/RegPrice",
        ];
        for doc in &docs {
            for q in &queries {
                assert_eq!(dom_eval(q, doc), qxs_eval(q, doc), "query {q} on {doc}");
            }
        }
    }

    #[test]
    fn dom_handles_fig6_query() {
        let doc = r#"<r><s><p><t>XML</t></p><f w="400"/>yes</s>
                      <s><t>XML</t><f w="100"/>no</s></r>"#;
        let q = r#"//s[.//t = "XML" and f/@w > 300]"#;
        let got = dom_eval(q, doc);
        assert_eq!(got, qxs_eval(q, doc));
        assert_eq!(got.len(), 1);
    }

    #[test]
    fn naive_agrees_on_results() {
        let doc = "<a><a><b>x</b><a><b>y</b></a></a><b>z</b></a>";
        for q in ["/a/b", "//b", "//a//b", "//a/b"] {
            let (naive, _) = naive_eval(q, doc);
            let mut expect = qxs_eval(q, doc);
            let mut naive_sorted = naive.clone();
            naive_sorted.sort();
            expect.sort();
            assert_eq!(naive_sorted, expect, "query {q}");
        }
    }

    #[test]
    fn naive_state_blowup_vs_quickxscan_bound() {
        // //a//a//a over a document of r nested <a> elements: the naive
        // matcher's live partial-match count grows superlinearly in r while
        // QuickXScan stays <= |Q|*r.
        let r = 14usize;
        let mut doc = String::new();
        for _ in 0..r {
            doc.push_str("<a>");
        }
        doc.push('x');
        for _ in 0..r {
            doc.push_str("</a>");
        }
        let query = "//a//a//a";
        let path = XPathParser::new().parse(query).unwrap();
        let tree = QueryTree::compile(&path).unwrap();
        let dict = NameDict::new();

        let (_, naive_peak) = {
            let mut m = NaiveStreamMatcher::new(&tree, &dict).unwrap();
            rx_xml::Parser::new(&dict).parse(&doc, &mut m).unwrap();
            m.finish()
        };
        let (_, stats) = scan_str(&tree, &dict, &doc).unwrap();
        let q_count = tree.size();
        assert!(
            stats.peak_instances <= q_count * r + 1,
            "QuickXScan peak {} exceeds |Q|*r = {}",
            stats.peak_instances,
            q_count * r
        );
        // The naive matcher tracks Θ(r²)+ partials here.
        assert!(
            naive_peak > 4 * stats.peak_instances,
            "naive {naive_peak} vs quickxscan {}",
            stats.peak_instances
        );
    }

    #[test]
    fn naive_rejects_unsupported() {
        let dict = NameDict::new();
        let path = XPathParser::new().parse("/a[b]").unwrap();
        let tree = QueryTree::compile(&path).unwrap();
        assert!(NaiveStreamMatcher::new(&tree, &dict).is_err());
    }

    #[test]
    fn dom_attribute_results() {
        let doc = r#"<r><p id="1"/><p id="2"/></r>"#;
        assert_eq!(dom_eval("//p/@id", doc), vec!["1", "2"]);
    }
}
