//! # rx-xpath — XPath compilation and the QuickXScan streaming evaluator
//!
//! The query-processing heart of the System R/X reproduction (§4.2):
//!
//! * [`parser`] — LALR(1)-style XPath parser for the paper's forward-axis
//!   fragment, with the parent-axis rewrite;
//! * [`query_tree`] — the Fig. 6 query tree with single-line (child) and
//!   double-line (descendant) edges and predicate operand subtrees;
//! * [`quickxscan`] — **QuickXScan**: attribute-grammar streaming evaluation
//!   with per-query-node matching stacks, upward links, and the duplicate-free
//!   Table 1 propagation rules; O(|Q|·r) live state, O(|Q|·r·|D|) time;
//! * [`containment`] — index-path vs query-path containment (exact vs
//!   filtering index use, Table 2);
//! * [`baseline`] — the DOM-based and naive per-instance streaming baselines
//!   of the paper's comparison (Fig. 7).

#![warn(missing_docs)]

pub mod ast;
pub mod baseline;
pub mod containment;
pub mod error;
pub mod parser;
pub mod query_tree;
pub mod quickxscan;

pub use ast::{Axis, CmpOp, Expr, NodeTest, Operand, Path, Step};
pub use containment::{classify, IndexMatch};
pub use error::{Result, XPathError};
pub use parser::XPathParser;
pub use query_tree::QueryTree;
pub use quickxscan::{scan_str, QuickXScan, ResultItem, ScanStats};
