//! QuickXScan — the optimal streaming XPath evaluation algorithm (§4.2).
//!
//! QuickXScan evaluates a compiled [`QueryTree`] in **one pass** over a
//! virtual-SAX event stream, with the characteristics the paper demands of a
//! base algorithm: "it evaluates an XPath expression by one pass scan of a
//! document without help from extra indexes, and also has similar performance
//! characteristics [to a relational scan]".
//!
//! The implementation follows the paper exactly:
//!
//! * it is an **attribute-grammar evaluation**: inherited attributes (does a
//!   document node match a query node?) are decided top-down, synthesized
//!   attributes (value sequences, predicate booleans) bottom-up;
//! * a **(horizontal) stack per query node** tracks matching instances; only
//!   the **stack top** is consulted to match a new node, which is what bounds
//!   live state at O(|Q|·r) instead of the exponential active-state sets of
//!   naive streaming automata (Fig. 7);
//! * the **two transitivity properties** are exploited through *upward links*
//!   and the §4.2 propagation rules of **Table 1**: on pop, an instance
//!   propagates its sequence-valued attributes *upward* when it has an upward
//!   link, *sideways* (to the nested instance below it in the same stack)
//!   when it shares its previous-step matching — never both, so sequences
//!   stay duplicate-free;
//! * candidate result sequences are held at each main-path instance and
//!   filtered by that instance's predicates when it pops ("candidate result
//!   sequences, which will go through filtering by predicates associated in
//!   the upper query nodes").
//!
//! The struct implements [`EventSink`], so the same evaluator runs over the
//! parser's token stream, packed persistent records, or constructed data —
//! task 3 of the §4.4 virtual-SAX runtime.

use crate::ast::{CmpOp, NodeTest};
use crate::error::{Result as XResult, XPathError};
use crate::query_tree::{PExpr, POp, QAxis, QueryTree, Route};
use rx_xml::event::{Event, EventSink};
use rx_xml::name::{NameDict, QNameId};
use rx_xml::nodeid::NodeId;
use std::collections::HashMap;

/// One item of a result or operand sequence.
#[derive(Debug, Clone, PartialEq)]
pub struct ResultItem {
    /// The node's string value.
    pub value: String,
    /// The node's ID, when the event source supplies node IDs (persistent
    /// data does; plain parsed streams do not).
    pub node: Option<NodeId>,
    /// Match sequence number: assigned when the node is first matched, so it
    /// follows document order of node starts. Result sequences are sorted by
    /// it before they are returned (sideways propagation can deliver values
    /// out of start order).
    pub order: u64,
}

impl ResultItem {
    /// Convenience constructor for tests and callers that only care about
    /// the value.
    pub fn of(value: impl Into<String>) -> Self {
        ResultItem {
            value: value.into(),
            node: None,
            order: 0,
        }
    }
}

/// Instrumentation counters backing the paper's complexity claims.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ScanStats {
    /// Matching instances created in total.
    pub matchings: u64,
    /// Peak simultaneous matching instances across all stacks — the paper's
    /// O(|Q|·r) bound.
    pub peak_instances: usize,
    /// Sequence-value propagations performed (upward + sideways).
    pub propagations: u64,
    /// Events processed.
    pub events: u64,
}

struct Instance {
    /// Unique id, used for the sharing test on upward links.
    id: u64,
    /// Document depth of the matched element.
    depth: u32,
    /// Id of the previous-step instance that licensed this match.
    parent_inst: u64,
    /// Upward link: `(query node, stack position)` of the licensing
    /// previous-step instance — absent when this instance *shares* that
    /// matching with the instance below it (then it propagates sideways).
    upward: Option<(usize, usize)>,
    /// Values held for upward routing whose matching path runs through this
    /// instance's binding — filtered by this node's predicates at pop.
    held: Vec<ResultItem>,
    /// Values received *sideways* from a nested instance: they already passed
    /// the predicates of their own binding and only transit through this
    /// instance on the shared previous-step matching — never re-filtered.
    transit: Vec<ResultItem>,
    /// Index in `held` reserved for this node's own value.
    own_slot: Option<usize>,
    /// String-value accumulator (only filled for `produces_value` nodes).
    text: String,
    /// Operand sequences for this node's own predicates.
    operands: Vec<Vec<ResultItem>>,
}

/// The streaming evaluator.
pub struct QuickXScan<'q, 'd> {
    tree: &'q QueryTree,
    dict: &'d NameDict,
    stacks: Vec<Vec<Instance>>,
    /// For each open document element: the query nodes that pushed on it.
    doc_stack: Vec<Vec<usize>>,
    doc_depth: u32,
    /// Open instances accumulating string values: (qnode, stack position).
    accumulators: Vec<(usize, usize)>,
    /// Per-qnode memo of element-name test outcomes.
    name_cache: Vec<HashMap<QNameId, bool>>,
    /// Per-qnode, per-operand: does the operand chain root use the
    /// descendant axis (⇒ operand sequences propagate sideways, Table 1)?
    operand_sideways: Vec<Vec<bool>>,
    next_inst: u64,
    next_order: u64,
    live: usize,
    current_node: Option<NodeId>,
    /// Counters for the complexity experiments.
    pub stats: ScanStats,
}

impl<'q, 'd> QuickXScan<'q, 'd> {
    /// Prepare an evaluator for one document.
    pub fn new(tree: &'q QueryTree, dict: &'d NameDict) -> Self {
        let n = tree.nodes.len();
        let mut operand_sideways = vec![Vec::new(); n];
        for (q, node) in tree.nodes.iter().enumerate() {
            let mut flags = vec![false; node.operand_slots];
            for &c in &node.children {
                if let Route::Operand { owner, idx } = tree.nodes[c].route {
                    if owner == q && tree.nodes[c].parent == Some(q) {
                        flags[idx] = tree.nodes[c].axis == QAxis::Descendant;
                    }
                }
            }
            operand_sideways[q] = flags;
        }
        let mut scan = QuickXScan {
            tree,
            dict,
            stacks: (0..n).map(|_| Vec::new()).collect(),
            doc_stack: Vec::new(),
            doc_depth: 0,
            accumulators: Vec::new(),
            name_cache: vec![HashMap::new(); n],
            operand_sideways,
            next_inst: 1,
            next_order: 0,
            live: 0,
            current_node: None,
            stats: ScanStats::default(),
        };
        // The root query node's instance spans the whole document.
        scan.push_instance(0, 0, 0, None);
        scan
    }

    /// Supply the node ID of the *next* event's node (used by the engine when
    /// scanning persistent records, so results and index keys carry logical
    /// node IDs).
    pub fn set_current_node(&mut self, id: NodeId) {
        self.current_node = Some(id);
    }

    /// Finish after `EndDocument`, returning the result sequence.
    pub fn finish(mut self) -> XResult<Vec<ResultItem>> {
        let root = self.stacks[0].pop().ok_or_else(|| XPathError::Eval {
            message: "unbalanced document (root instance missing)".into(),
        })?;
        // Root-level predicates (rare: `/.[…]/…`).
        if !self.tree.nodes[0].predicates.is_empty() {
            let ok = self.tree.nodes[0]
                .predicates
                .iter()
                .all(|p| eval_pexpr(p, &root.operands));
            if !ok {
                return Ok(root.transit);
            }
        }
        let mut out = root.held;
        out.extend(root.transit);
        out.sort_by_key(|i| i.order);
        Ok(out)
    }

    /// Convenience: number of live matching instances right now.
    pub fn live_instances(&self) -> usize {
        self.live
    }

    fn push_instance(
        &mut self,
        q: usize,
        depth: u32,
        parent_inst: u64,
        upward: Option<(usize, usize)>,
    ) -> usize {
        let node = &self.tree.nodes[q];
        let mut held = Vec::new();
        let own_slot = if node.produces_value {
            self.next_order += 1;
            held.push(ResultItem {
                value: String::new(),
                node: self.current_node.clone(),
                order: self.next_order,
            });
            Some(0)
        } else {
            None
        };
        let inst = Instance {
            id: self.next_inst,
            depth,
            parent_inst,
            upward,
            held,
            transit: Vec::new(),
            own_slot,
            text: String::new(),
            operands: vec![Vec::new(); node.operand_slots],
        };
        self.next_inst += 1;
        self.stacks[q].push(inst);
        let pos = self.stacks[q].len() - 1;
        if node.produces_value || !node.self_value_operands.is_empty() {
            self.accumulators.push((q, pos));
        }
        self.live += 1;
        self.stats.matchings += 1;
        self.stats.peak_instances = self.stats.peak_instances.max(self.live);
        pos
    }

    fn element_test_matches(&mut self, q: usize, name: QNameId) -> bool {
        match &self.tree.nodes[q].test {
            NodeTest::AnyName | NodeTest::AnyKind => true,
            NodeTest::Text | NodeTest::Comment => false,
            NodeTest::Name { uri, local } => {
                if let Some(&hit) = self.name_cache[q].get(&name) {
                    return hit;
                }
                let hit = match uri {
                    Some(u) => self.dict.matches(name, u, local),
                    None => self.dict.matches_local(name, local),
                };
                self.name_cache[q].insert(name, hit);
                hit
            }
        }
    }

    /// Licensing check against the parent step's stack top (the paper's
    /// "only the stack top needs to be checked"). `node_depth` is the
    /// document depth of the node being matched (elements: the element's own
    /// depth; text/comments: one below the current element; attributes: the
    /// current element's depth, with the attribute axis requiring the owner
    /// itself). When the top instance was pushed by the node's own element it
    /// cannot license the node — the instance directly beneath is consulted
    /// instead (each element pushes at most one instance per stack, so one
    /// step down suffices).
    fn licensed(&self, q: usize, node_depth: u32) -> Option<usize> {
        let parent = self.tree.nodes[q].parent?;
        let stack = &self.stacks[parent];
        let mut pos = stack.len().checked_sub(1)?;
        let axis = self.tree.nodes[q].axis;
        let want = |inst: &Instance| match axis {
            QAxis::Child => inst.depth + 1 == node_depth,
            QAxis::Descendant => inst.depth < node_depth,
            QAxis::Attribute => inst.depth == node_depth,
        };
        if axis != QAxis::Attribute && stack[pos].depth >= node_depth {
            pos = pos.checked_sub(1)?;
        }
        if want(&stack[pos]) {
            Some(pos)
        } else {
            None
        }
    }

    fn on_start_element(&mut self, name: QNameId) {
        self.doc_depth += 1;
        let mut matched = Vec::new();
        // Query nodes are created parents-first, so iterating in index order
        // sees a parent's fresh instance before its children are tested —
        // needed for same-element parent/child matches on child-axis chains.
        for q in 1..self.tree.nodes.len() {
            if self.tree.nodes[q].axis == QAxis::Attribute {
                continue;
            }
            if !self.element_test_matches(q, name) {
                continue;
            }
            let Some(ptop_pos) = self.licensed(q, self.doc_depth) else {
                continue;
            };
            let parent = self.tree.nodes[q].parent.expect("non-root");
            let ptop_id = self.stacks[parent][ptop_pos].id;
            // Upward link unless this instance shares its previous-step
            // matching with the instance below it in the same stack.
            let upward = match self.stacks[q].last() {
                Some(below) if below.parent_inst == ptop_id => None,
                _ => Some((parent, ptop_pos)),
            };
            self.push_instance(q, self.doc_depth, ptop_id, upward);
            matched.push(q);
        }
        self.doc_stack.push(matched);
        self.current_node = None;
    }

    fn on_end_element(&mut self) -> XResult<()> {
        let matched = self.doc_stack.pop().ok_or_else(|| XPathError::Eval {
            message: "unbalanced end element".into(),
        })?;
        // Children pop before parents (reverse creation order).
        for &q in matched.iter().rev() {
            self.pop_instance(q);
        }
        self.doc_depth -= 1;
        self.current_node = None;
        Ok(())
    }

    fn pop_instance(&mut self, q: usize) {
        let mut inst = self.stacks[q].pop().expect("matched list is accurate");
        self.live -= 1;
        let node = &self.tree.nodes[q];
        if node.produces_value || !node.self_value_operands.is_empty() {
            // Remove the accumulator registration (it is at the tail region).
            let pos = self.stacks[q].len();
            if let Some(i) = self
                .accumulators
                .iter()
                .rposition(|&(aq, ap)| aq == q && ap == pos)
            {
                self.accumulators.swap_remove(i);
            }
            // `.` operands: the node's own string value feeds the slot.
            for &idx in &node.self_value_operands {
                self.next_order += 1;
                inst.operands[idx].push(ResultItem {
                    value: inst.text.clone(),
                    node: None,
                    order: self.next_order,
                });
            }
            if let Some(slot) = inst.own_slot {
                inst.held[slot].value = std::mem::take(&mut inst.text);
            }
        }
        // Predicate filtering of the held candidate values (must run before
        // the operand sequences are drained for sideways propagation).
        let pass = node
            .predicates
            .iter()
            .all(|p| eval_pexpr(p, &inst.operands));
        // Table 1, nested-owner rule: operand sequences gathered under this
        // instance also belong to the enclosing instance of the same step
        // when the operand chain uses the descendant axis — propagate
        // sideways regardless of this instance's own predicate outcome.
        if node.operand_slots > 0 {
            if let Some(below_pos) = self.stacks[q].len().checked_sub(1) {
                for idx in 0..node.operand_slots {
                    if self.operand_sideways[q][idx] && !inst.operands[idx].is_empty() {
                        let vals = std::mem::take(&mut inst.operands[idx]);
                        self.stats.propagations += 1;
                        self.stacks[q][below_pos].operands[idx].extend(vals);
                    }
                }
            }
        }
        // Values that survive: transiting values unconditionally, own-path
        // values only when this binding's predicates hold.
        let mut outgoing = std::mem::take(&mut inst.transit);
        if pass {
            // Keep document order: this binding's values start before any
            // nested instance's sideways contributions were received? No —
            // transit values come from *descendant* elements, which start
            // after this instance's own slot but may interleave with later
            // own-path arrivals. Own-held first preserves start order for
            // the common case (own value reserved at slot 0).
            let mut own = std::mem::take(&mut inst.held);
            own.extend(outgoing);
            outgoing = own;
        }
        if outgoing.is_empty() {
            return;
        }
        self.stats.propagations += 1;
        match inst.upward {
            None => {
                // Sideways: merge into the nested instance below (it shares
                // the previous-step matching — first transitivity property).
                // Already-filtered values transit; they are not re-filtered
                // by the receiving binding's predicates.
                let below_pos = self.stacks[q].len() - 1;
                self.stacks[q][below_pos].transit.extend(outgoing);
            }
            Some((pq, ppos)) => {
                let target = &mut self.stacks[pq][ppos];
                match node.route {
                    Route::Operand { owner, idx } if owner == pq => {
                        target.operands[idx].extend(outgoing);
                    }
                    _ => target.held.extend(outgoing),
                }
            }
        }
    }

    /// Instantaneous match of a leaf node (attribute / text / comment):
    /// deliver the value straight to the licensing parent instance.
    fn instantaneous(&mut self, q: usize, value: &str, node_depth: u32) {
        let Some(ptop_pos) = self.licensed(q, node_depth) else {
            return;
        };
        let node = &self.tree.nodes[q];
        // Leaf predicates see empty operand sequences.
        let no_operands: Vec<Vec<ResultItem>> = vec![Vec::new(); node.operand_slots];
        if !node.predicates.iter().all(|p| eval_pexpr(p, &no_operands)) {
            return;
        }
        let parent = node.parent.expect("non-root");
        self.next_order += 1;
        let item = ResultItem {
            value: value.to_string(),
            node: self.current_node.clone(),
            order: self.next_order,
        };
        self.stats.matchings += 1;
        self.stats.propagations += 1;
        let target = &mut self.stacks[parent][ptop_pos];
        match node.route {
            Route::Operand { owner, idx } if owner == parent => {
                target.operands[idx].push(item);
            }
            _ => target.held.push(item),
        }
    }

    fn on_attribute(&mut self, name: QNameId, value: &str) {
        for q in 1..self.tree.nodes.len() {
            let node = &self.tree.nodes[q];
            if node.axis != QAxis::Attribute {
                continue;
            }
            let hit = match &node.test {
                NodeTest::AnyName | NodeTest::AnyKind => true,
                NodeTest::Name { uri, local } => match uri {
                    Some(u) => self.dict.matches(name, u, local),
                    None => self.dict.matches_local(name, local),
                },
                _ => false,
            };
            if hit {
                self.instantaneous(q, value, self.doc_depth);
            }
        }
        self.current_node = None;
    }

    fn on_text(&mut self, value: &str) {
        // Feed every open string-value accumulator (string value = all
        // descendant text).
        for i in 0..self.accumulators.len() {
            let (q, pos) = self.accumulators[i];
            self.stacks[q][pos].text.push_str(value);
        }
        for q in 1..self.tree.nodes.len() {
            let node = &self.tree.nodes[q];
            if node.axis == QAxis::Attribute {
                continue;
            }
            let is_leaf_match = match node.test {
                NodeTest::Text => true,
                // node() kind tests match text nodes too, but only leaf query
                // nodes can bind a text node (text has no children).
                NodeTest::AnyKind => node.children.is_empty(),
                _ => false,
            };
            if is_leaf_match {
                self.instantaneous(q, value, self.doc_depth + 1);
            }
        }
        self.current_node = None;
    }

    fn on_comment(&mut self, value: &str) {
        for q in 1..self.tree.nodes.len() {
            let node = &self.tree.nodes[q];
            if node.axis != QAxis::Attribute && node.test == NodeTest::Comment {
                self.instantaneous(q, value, self.doc_depth + 1);
            }
        }
        self.current_node = None;
    }

    /// Debug view of a stack's depths (used by the Fig. 7 test).
    pub fn stack_depths(&self, q: usize) -> Vec<u32> {
        self.stacks[q].iter().map(|i| i.depth).collect()
    }
}

impl EventSink for QuickXScan<'_, '_> {
    fn event(&mut self, ev: Event<'_>) -> rx_xml::Result<()> {
        self.stats.events += 1;
        match ev {
            Event::StartDocument | Event::EndDocument | Event::NamespaceDecl { .. } => {}
            Event::StartElement { name } => self.on_start_element(name),
            Event::EndElement => self
                .on_end_element()
                .map_err(|e| rx_xml::XmlError::stream(e.to_string()))?,
            Event::Attribute { name, value, .. } => self.on_attribute(name, value),
            Event::Text { value, .. } => self.on_text(value),
            Event::Comment { value } => self.on_comment(value),
            Event::Pi { .. } => {
                self.current_node = None;
            }
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Predicate evaluation (existential general-comparison semantics)
// ---------------------------------------------------------------------------

fn eval_pexpr(e: &PExpr, operands: &[Vec<ResultItem>]) -> bool {
    match e {
        PExpr::Or(a, b) => eval_pexpr(a, operands) || eval_pexpr(b, operands),
        PExpr::And(a, b) => eval_pexpr(a, operands) && eval_pexpr(b, operands),
        PExpr::Not(a) => !eval_pexpr(a, operands),
        PExpr::Exists(idx) => !operands[*idx].is_empty(),
        PExpr::Cmp(op, lhs, rhs) => eval_cmp(*op, lhs, rhs, operands),
    }
}

fn eval_cmp(op: CmpOp, lhs: &POp, rhs: &POp, operands: &[Vec<ResultItem>]) -> bool {
    use POp::*;
    match (lhs, rhs) {
        // Normalize literal-on-the-left by flipping.
        (Literal(_) | Number(_), Seq(_) | Count(_)) => eval_cmp(op.flip(), rhs, lhs, operands),
        (Seq(i), Literal(s)) => operands[*i].iter().any(|v| cmp_str(op, &v.value, s)),
        (Seq(i), Number(n)) => operands[*i].iter().any(|v| {
            v.value
                .trim()
                .parse::<f64>()
                .is_ok_and(|x| num_cmp(op, x, *n))
        }),
        (Seq(i), Seq(j)) => operands[*i]
            .iter()
            .any(|a| operands[*j].iter().any(|b| cmp_str(op, &a.value, &b.value))),
        (Count(i), Number(n)) => num_cmp(op, operands[*i].len() as f64, *n),
        (Count(i), Literal(s)) => s
            .trim()
            .parse::<f64>()
            .is_ok_and(|n| num_cmp(op, operands[*i].len() as f64, n)),
        (Count(i), Count(j)) => num_cmp(op, operands[*i].len() as f64, operands[*j].len() as f64),
        (Count(i), Seq(j)) => operands[*j].iter().any(|v| {
            v.value
                .trim()
                .parse::<f64>()
                .is_ok_and(|x| num_cmp(op, operands[*i].len() as f64, x))
        }),
        (Seq(i), Count(j)) => operands[*i].iter().any(|v| {
            v.value
                .trim()
                .parse::<f64>()
                .is_ok_and(|x| num_cmp(op, x, operands[*j].len() as f64))
        }),
        (Literal(a), Literal(b)) => cmp_str(op, a, b),
        (Number(a), Number(b)) => num_cmp(op, *a, *b),
        (Literal(a), Number(b)) => a.trim().parse::<f64>().is_ok_and(|x| num_cmp(op, x, *b)),
        (Number(a), Literal(b)) => b.trim().parse::<f64>().is_ok_and(|x| num_cmp(op, *a, x)),
    }
}

fn num_cmp(op: CmpOp, a: f64, b: f64) -> bool {
    a.partial_cmp(&b).is_some_and(|o| op.test(o))
}

/// XPath 1.0 style: `=`/`!=` compare as strings, ordering operators compare
/// numerically.
fn cmp_str(op: CmpOp, a: &str, b: &str) -> bool {
    match op {
        CmpOp::Eq => a == b,
        CmpOp::Ne => a != b,
        _ => match (a.trim().parse::<f64>(), b.trim().parse::<f64>()) {
            (Ok(x), Ok(y)) => num_cmp(op, x, y),
            _ => false,
        },
    }
}

/// Evaluate a compiled query over XML text (parse + scan in one pipeline).
///
/// ```
/// use rx_xml::NameDict;
/// use rx_xpath::{QueryTree, XPathParser, scan_str};
///
/// let dict = NameDict::new();
/// let path = XPathParser::new().parse("//item[price > 10]/name").unwrap();
/// let tree = QueryTree::compile(&path).unwrap();
/// let doc = "<cat><item><name>a</name><price>5</price></item>\
///            <item><name>b</name><price>20</price></item></cat>";
/// let (hits, stats) = scan_str(&tree, &dict, doc).unwrap();
/// assert_eq!(hits.len(), 1);
/// assert_eq!(hits[0].value, "b");
/// assert!(stats.peak_instances <= tree.size() * 2);
/// ```
pub fn scan_str(
    tree: &QueryTree,
    dict: &NameDict,
    input: &str,
) -> XResult<(Vec<ResultItem>, ScanStats)> {
    let mut scan = QuickXScan::new(tree, dict);
    rx_xml::Parser::new(dict)
        .parse(input, &mut scan)
        .map_err(|e| XPathError::Eval {
            message: e.to_string(),
        })?;
    let stats = scan.stats;
    Ok((scan.finish()?, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::XPathParser;

    fn run(query: &str, doc: &str) -> Vec<String> {
        let path = XPathParser::new().parse(query).unwrap();
        let tree = QueryTree::compile(&path).unwrap();
        let dict = NameDict::new();
        let (items, _) = scan_str(&tree, &dict, doc).unwrap();
        items.into_iter().map(|i| i.value).collect()
    }

    #[test]
    fn simple_child_path() {
        let doc = "<a><b>1</b><c>skip</c><b>2</b></a>";
        assert_eq!(run("/a/b", doc), vec!["1", "2"]);
        assert_eq!(run("/a/c", doc), vec!["skip"]);
        assert!(run("/a/x", doc).is_empty());
        assert!(run("/x/b", doc).is_empty());
    }

    #[test]
    fn descendant_path() {
        let doc = "<a><b><c>1</c></b><c>2</c><d><e><c>3</c></e></d></a>";
        assert_eq!(run("//c", doc), vec!["1", "2", "3"]);
        assert_eq!(run("/a//c", doc), vec!["1", "2", "3"]);
        assert_eq!(run("/a/d//c", doc), vec!["3"]);
    }

    #[test]
    fn recursive_document_no_duplicates() {
        // //a//b with nested a elements: each b reported once (the paper's
        // first transitivity property / duplicate-free propagation).
        let doc = "<a><a><b>x</b></a><b>y</b></a>";
        assert_eq!(run("//a//b", doc), vec!["x", "y"]);
        // Deeper recursion.
        let doc = "<a><a><a><b>q</b></a></a></a>";
        assert_eq!(run("//a//b", doc), vec!["q"]);
        assert_eq!(run("//a//a//b", doc), vec!["q"]);
    }

    #[test]
    fn nested_result_elements_in_document_order() {
        let doc = "<r><a>out<a>in</a></a></r>";
        assert_eq!(run("//a", doc), vec!["outin", "in"]);
    }

    #[test]
    fn attribute_results() {
        let doc = r#"<r><p id="1"/><p id="2"/></r>"#;
        assert_eq!(run("/r/p/@id", doc), vec!["1", "2"]);
        assert_eq!(run("//p/@id", doc), vec!["1", "2"]);
    }

    #[test]
    fn text_results() {
        let doc = "<r><p>one</p><p>two</p></r>";
        assert_eq!(run("/r/p/text()", doc), vec!["one", "two"]);
    }

    #[test]
    fn value_predicates() {
        let doc = r#"<Catalog><Categories>
            <Product><RegPrice>150</RegPrice><ProductName>A</ProductName></Product>
            <Product><RegPrice>50</RegPrice><ProductName>B</ProductName></Product>
            <Product><RegPrice>250</RegPrice><ProductName>C</ProductName></Product>
        </Categories></Catalog>"#;
        let names = run(
            "/Catalog/Categories/Product[RegPrice > 100]/ProductName",
            doc,
        );
        assert_eq!(names, vec!["A", "C"]);
        let names = run(
            "/Catalog/Categories/Product[RegPrice = 50]/ProductName",
            doc,
        );
        assert_eq!(names, vec!["B"]);
    }

    #[test]
    fn the_fig6_query_end_to_end() {
        // //s[.//t = "XML" and f/@w > 300]
        let q = r#"//s[.//t = "XML" and f/@w > 300]"#;
        // Satisfying document.
        let doc = r#"<r><s><p><t>XML</t></p><f w="400"/>yes</s>
                      <s><t>XML</t><f w="100"/>no-w</s>
                      <s><f w="999"/>no-t</s></r>"#;
        let got = run(q, doc);
        assert_eq!(got.len(), 1);
        assert!(got[0].contains("yes"));
    }

    #[test]
    fn fig7_stack_state_at_t4() {
        // Fig. 6(b) document: r0 > s1(p1(t1? no…)) — we reproduce the stack
        // situation: when t4 (nested under s2>s3) matches, the s-stack holds
        // s2, s3 (plus the document-spanning root) and only the top was
        // consulted. Document shaped like Fig. 6(b): s2 contains s3 contains
        // t3/t4 region.
        let path = XPathParser::new().parse(r#"//s[.//t = "XML"]"#).unwrap();
        let tree = QueryTree::compile(&path).unwrap();
        let dict = NameDict::new();
        let mut scan = QuickXScan::new(&tree, &dict);
        let doc = "<r0><s2><s3><t4>";
        // Drive events manually to freeze the moment t4 is open.
        let p = rx_xml::Parser::new(&dict);
        // Parse a full document but check state via a probe: simpler to send
        // events by hand.
        let _ = p;
        use rx_xml::event::Event;
        let s_name = dict.intern("", "", "s");
        let r_name = dict.intern("", "", "r0");
        let t_name = dict.intern("", "", "t");
        scan.event(Event::StartDocument).unwrap();
        scan.event(Event::StartElement { name: r_name }).unwrap();
        scan.event(Event::StartElement { name: s_name }).unwrap(); // s2
        scan.event(Event::StartElement { name: s_name }).unwrap(); // s3
        scan.event(Event::StartElement { name: t_name }).unwrap(); // t4
                                                                   // The s query node is node 1; its stack holds exactly the two nested
                                                                   // s instances (depths 2 and 3) — Fig. 7(b).
        assert_eq!(scan.stack_depths(1), vec![2, 3]);
        // The t query node's stack holds t4.
        assert_eq!(scan.stack_depths(2), vec![4]);
        // Total live: root + s2 + s3 + t4.
        assert_eq!(scan.live_instances(), 4);
        let _ = doc;
    }

    #[test]
    fn table1_case1_child_single() {
        // Path a/b, one a with several b children: s = all b values, upward.
        let doc = "<a><b>1</b><b>2</b><b>3</b></a>";
        assert_eq!(run("/a/b", doc), vec!["1", "2", "3"]);
    }

    #[test]
    fn table1_case2_child_nested_as() {
        // Path a//x where multiple a instances nest: child axis from a.
        // Table 1 row 2: no sideways propagation for child-axis sequences —
        // each a sees only its own children.
        let doc = "<r><a><b>outer</b><a><b>inner</b></a></a></r>";
        // //a[b = "inner"] must match only the inner a.
        let got = run(r#"//a[b = "inner"]"#, doc);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0], "inner");
        // //a[b = "outer"] must match only the outer a.
        let got = run(r#"//a[b = "outer"]"#, doc);
        assert_eq!(got.len(), 1);
        assert!(got[0].starts_with("outer"));
    }

    #[test]
    fn table1_case3_descendant() {
        // Path a//b: descendants accumulate across nesting without dupes.
        let doc = "<r><a><c><b>1</b></c><b>2</b></a></r>";
        assert_eq!(run("//a//b", doc), vec!["1", "2"]);
    }

    #[test]
    fn table1_case4_descendant_nested_owner() {
        // a//b with nested a's: inner a's descendants belong to the outer a
        // too (sideways owner propagation) — predicate on the OUTER a must
        // see values found only under the inner a.
        let doc = r#"<r><a><a><b>deep</b></a></a></r>"#;
        let got = run(r#"//a[.//b = "deep"]"#, doc);
        // Both the outer and inner a qualify.
        assert_eq!(got.len(), 2);
    }

    #[test]
    fn count_and_exists_predicates() {
        let doc = "<r><o><i/><i/></o><o><i/></o><o/></r>";
        assert_eq!(run("/r/o[count(i) >= 2]", doc).len(), 1);
        assert_eq!(run("/r/o[count(i) = 1]", doc).len(), 1);
        assert_eq!(run("/r/o[i]", doc).len(), 2);
        assert_eq!(run("/r/o[not(i)]", doc).len(), 1);
    }

    #[test]
    fn boolean_connectives() {
        let doc = r#"<r><p a="1" b="2"/><p a="1"/><p b="2"/></r>"#;
        assert_eq!(run("/r/p[@a = 1 and @b = 2]", doc).len(), 1);
        assert_eq!(run("/r/p[@a = 1 or @b = 2]", doc).len(), 3);
        assert_eq!(run("/r/p[not(@a) and @b = 2]", doc).len(), 1);
    }

    #[test]
    fn wildcard_steps() {
        let doc = "<r><x><v>1</v></x><y><v>2</v></y></r>";
        assert_eq!(run("/r/*/v", doc), vec!["1", "2"]);
        assert_eq!(run("/r/*", doc), vec!["1", "2"]);
    }

    #[test]
    fn stats_track_peak_instances() {
        let path = XPathParser::new().parse("//a//a").unwrap();
        let tree = QueryTree::compile(&path).unwrap();
        let dict = NameDict::new();
        // Recursion depth 6 document.
        let doc = "<a><a><a><a><a><a>x</a></a></a></a></a></a>";
        let (_, stats) = scan_str(&tree, &dict, doc).unwrap();
        // peak ≤ |Q| * r + 1 (root instance): |Q|=3 (incl. root), r=6.
        assert!(stats.peak_instances <= 3 * 6 + 1, "{stats:?}");
        assert!(stats.matchings > 0);
        assert!(stats.events > 0);
    }

    #[test]
    fn string_values_concatenate_descendants() {
        let doc = "<r><p>a<b>b</b>c</p></r>";
        assert_eq!(run("/r/p", doc), vec!["abc"]);
    }

    #[test]
    fn comparison_of_two_paths() {
        let doc = "<r><o><x>5</x><y>5</y></o><o><x>1</x><y>2</y></o></r>";
        assert_eq!(run("/r/o[x = y]", doc).len(), 1);
        assert_eq!(run("/r/o[x != y]", doc).len(), 1);
    }

    #[test]
    fn comment_nodes() {
        let doc = "<r><a><!--note--></a><b><!--memo--></b></r>";
        assert_eq!(run("//comment()", doc), vec!["note", "memo"]);
    }

    #[test]
    fn deep_linear_chain() {
        let mut doc = String::new();
        for _ in 0..50 {
            doc.push_str("<d>");
        }
        doc.push_str("leaf");
        for _ in 0..50 {
            doc.push_str("</d>");
        }
        let got = run("//d[not(d)]", &doc);
        assert_eq!(got, vec!["leaf"]);
    }
}
